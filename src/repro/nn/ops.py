"""Functional operations that combine or restructure tensors.

Everything here is expressed in terms of :class:`repro.nn.tensor.Tensor`
primitives plus hand-written backward closures where a fused implementation
is materially faster (softmax, gather/scatter, conv1d).

The gather/scatter pair (:func:`index_select` / :func:`index_add`) is the
workhorse of graph message passing: an R-GCN layer gathers source-entity
rows, transforms them, and scatter-adds the messages onto destination rows.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .tensor import Tensor, _unbroadcast, is_grad_enabled

try:  # scipy accelerates the scatter primitives; ops degrade gracefully
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - scipy is a soft dependency
    _sparse = None

IndexLike = Union[Tensor, np.ndarray, Sequence[int]]

# Cache of one-hot scatter matrices keyed by the index array's contents.
# Graph snapshots are re-encoded every epoch with identical edge arrays,
# so the CSR construction cost is paid once per distinct snapshot.
_SCATTER_CACHE: "OrderedDict[tuple, object]" = None
_SCATTER_CACHE_LIMIT = 1024


def _scatter_matrix(idx: np.ndarray, num_segments: int):
    """CSR matrix M with M[idx[e], e] = 1 — scatter-add as a matmul."""
    global _SCATTER_CACHE
    if _sparse is None:
        return None
    if _SCATTER_CACHE is None:
        from collections import OrderedDict
        _SCATTER_CACHE = OrderedDict()
    # dtype + length belong in the key: raw bytes alone collide across
    # widths (int64 [0] and int32 [0, 0] serialize identically).
    key = (idx.dtype.str, len(idx), idx.tobytes(), num_segments)
    cached = _SCATTER_CACHE.get(key)
    if cached is not None:
        _SCATTER_CACHE.move_to_end(key)
        return cached
    num_edges = len(idx)
    mat = _sparse.csr_matrix(
        (np.ones(num_edges, dtype=np.float32),
         (idx, np.arange(num_edges))),
        shape=(num_segments, num_edges))
    _SCATTER_CACHE[key] = mat
    if len(_SCATTER_CACHE) > _SCATTER_CACHE_LIMIT:
        _SCATTER_CACHE.popitem(last=False)
    return mat


def _scatter_add_rows(idx: np.ndarray, values: np.ndarray,
                      num_segments: int) -> np.ndarray:
    """Sum ``values`` rows into ``num_segments`` buckets (fast path)."""
    mat = _scatter_matrix(idx, num_segments)
    if mat is None:  # scipy unavailable: fall back to the ufunc
        out = np.zeros((num_segments,) + values.shape[1:], dtype=values.dtype)
        np.add.at(out, idx, values)
        return out
    if values.ndim == 1:
        return np.asarray(mat @ values[:, None]).reshape(num_segments)
    return np.asarray(mat @ values)


def _index_array(index: IndexLike) -> np.ndarray:
    if isinstance(index, Tensor):
        index = index.data
    arr = np.asarray(index)
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(f"indices must be integers, got {arr.dtype}")
    return arr


# ---------------------------------------------------------------------------
# structural ops
# ---------------------------------------------------------------------------

def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = list(tensors)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            t._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    tensors = list(tensors)
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for t, piece in zip(tensors, pieces):
            t._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(out_data, tensors, backward)


def where(condition: Union[np.ndarray, Tensor], a: Tensor, b: Tensor) -> Tensor:
    """Element-wise select: ``condition ? a : b`` (differentiable in a, b)."""
    cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    cond = cond.astype(bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(_unbroadcast(grad * cond, a.shape))
        b._accumulate(_unbroadcast(grad * ~cond, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def pad2d(t: Tensor, pad: Tuple[int, int, int, int]) -> Tensor:
    """Zero-pad the last two axes: ``pad = (top, bottom, left, right)``."""
    top, bottom, left, right = pad
    widths = [(0, 0)] * (t.ndim - 2) + [(top, bottom), (left, right)]
    out_data = np.pad(t.data, widths)

    def backward(grad: np.ndarray) -> None:
        slicer = [slice(None)] * (t.ndim - 2)
        slicer.append(slice(top, grad.shape[-2] - bottom))
        slicer.append(slice(left, grad.shape[-1] - right))
        t._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, (t,), backward)


# ---------------------------------------------------------------------------
# gather / scatter — graph message passing primitives
# ---------------------------------------------------------------------------

def index_select(source: Tensor, index: IndexLike) -> Tensor:
    """Gather rows of ``source`` (axis 0) — the embedding-lookup primitive.

    Equivalent to ``source[index]`` but kept as a named op for clarity at
    message-passing call sites.
    """
    idx = _index_array(index)
    out_data = source.data[idx]
    num_rows = source.shape[0]

    def backward(grad: np.ndarray) -> None:
        source._accumulate(_scatter_add_rows(idx, grad, num_rows))

    return Tensor._make(out_data, (source,), backward)


def index_add(base: Tensor, index: IndexLike, values: Tensor) -> Tensor:
    """Return ``base`` with ``values`` scatter-added at ``index`` (axis 0).

    Duplicate indices accumulate, which is exactly the sum-aggregation a
    GCN needs when several edges share a destination node.
    """
    idx = _index_array(index)
    out_data = base.data.copy()
    np.add.at(out_data, idx, values.data)

    def backward(grad: np.ndarray) -> None:
        base._accumulate(grad)
        values._accumulate(grad[idx])

    return Tensor._make(out_data, (base, values), backward)


def segment_sum(values: Tensor, segment_ids: IndexLike, num_segments: int) -> Tensor:
    """Sum ``values`` rows into ``num_segments`` buckets by ``segment_ids``."""
    idx = _index_array(segment_ids)
    out_data = _scatter_add_rows(idx, values.data, num_segments)

    def backward(grad: np.ndarray) -> None:
        values._accumulate(grad[idx])

    return Tensor._make(out_data, (values,), backward)


def segment_mean(values: Tensor, segment_ids: IndexLike,
                 num_segments: int) -> Tensor:
    """Mean-pool ``values`` rows into buckets; empty buckets stay zero."""
    idx = _index_array(segment_ids)
    counts = np.bincount(idx, minlength=num_segments).astype(values.data.dtype)
    counts = np.maximum(counts, 1.0)
    total = segment_sum(values, idx, num_segments)
    return total * Tensor(1.0 / counts[:, None] if values.ndim > 1 else 1.0 / counts)


def segment_softmax(scores: Tensor, segment_ids: IndexLike,
                    num_segments: int) -> Tensor:
    """Softmax over variable-size segments (per-destination edge softmax).

    Used by the KBGAT attention aggregator where each destination node
    normalizes the attention logits of its incoming edges.
    """
    idx = _index_array(segment_ids)
    data = scores.data
    seg_max = np.full(num_segments, -np.inf, dtype=data.dtype)
    np.maximum.at(seg_max, idx, data)
    seg_max = np.where(np.isfinite(seg_max), seg_max, 0.0)
    shifted = data - seg_max[idx]
    exp = np.exp(shifted)
    seg_sum = np.zeros(num_segments, dtype=data.dtype)
    np.add.at(seg_sum, idx, exp)
    out_data = exp / np.maximum(seg_sum[idx], 1e-12)

    def backward(grad: np.ndarray) -> None:
        # d softmax: p * (grad - sum_j p_j grad_j) within each segment
        weighted = out_data * grad
        seg_dot = np.zeros(num_segments, dtype=data.dtype)
        np.add.at(seg_dot, idx, weighted)
        scores._accumulate(weighted - out_data * seg_dot[idx])

    return Tensor._make(out_data, (scores,), backward)


# ---------------------------------------------------------------------------
# normalizations / softmax family
# ---------------------------------------------------------------------------

def softmax(t: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = t.data - t.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        t._accumulate(out_data * (grad - dot))

    return Tensor._make(out_data, (t,), backward)


def log_softmax(t: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = t.data - t.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_sum
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        t._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (t,), backward)


def logsumexp(t: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable log-sum-exp reduction."""
    m = t.data.max(axis=axis, keepdims=True)
    exp = np.exp(t.data - m)
    s = exp.sum(axis=axis, keepdims=True)
    out_keep = m + np.log(s)
    out_data = out_keep if keepdims else np.squeeze(out_keep, axis=axis)
    soft = exp / s

    def backward(grad: np.ndarray) -> None:
        g = grad if keepdims else np.expand_dims(grad, axis)
        t._accumulate(soft * g)

    return Tensor._make(out_data, (t,), backward)


def l2_normalize(t: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Project rows onto the unit sphere (used by the contrast module).

    Rows whose norm falls below ``eps`` are flushed to exact zero: a
    clamped denominator alone would leave them at an arbitrary tiny
    scale, which breaks idempotency (normalizing twice would suddenly
    blow the row up once its rescaled norm crosses ``eps``).
    """
    norm = np.sqrt((t.data ** 2).sum(axis=axis, keepdims=True))
    degenerate = norm < eps
    safe_norm = np.maximum(norm, eps)
    out_data = np.where(degenerate, 0.0, t.data / safe_norm)

    def backward(grad: np.ndarray) -> None:
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        t._accumulate(np.where(degenerate, 0.0,
                               (grad - out_data * dot) / safe_norm))

    return Tensor._make(out_data, (t,), backward)


# ---------------------------------------------------------------------------
# dropout / noise
# ---------------------------------------------------------------------------

def dropout(t: Tensor, rate: float, training: bool,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: identity at eval time or when ``rate == 0``."""
    if not training or rate <= 0.0:
        return t
    rng = rng or np.random.default_rng()
    keep = 1.0 - rate
    mask = (rng.random(t.shape) < keep).astype(t.data.dtype) / keep
    out_data = t.data * mask

    def backward(grad: np.ndarray) -> None:
        t._accumulate(grad * mask)

    return Tensor._make(out_data, (t,), backward)


def rrelu(t: Tensor, lower: float = 1.0 / 8.0, upper: float = 1.0 / 3.0,
          training: bool = False,
          rng: Optional[np.random.Generator] = None) -> Tensor:
    """Randomized leaky ReLU (the paper's sigma_1 in Eq. 4).

    During training the negative-side slope is sampled uniformly from
    ``[lower, upper]`` per element; at eval it is fixed to the mean slope,
    matching PyTorch's ``RReLU`` semantics.
    """
    if training:
        rng = rng or np.random.default_rng()
        slope = rng.uniform(lower, upper, size=t.shape).astype(t.data.dtype)
    else:
        slope = np.full(t.shape, (lower + upper) / 2.0, dtype=t.data.dtype)
    out_data = np.where(t.data >= 0, t.data, slope * t.data)

    def backward(grad: np.ndarray) -> None:
        t._accumulate(grad * np.where(t.data >= 0, 1.0, slope))

    return Tensor._make(out_data, (t,), backward)


# ---------------------------------------------------------------------------
# convolution (for the ConvTransE decoder and ConvE baseline)
# ---------------------------------------------------------------------------

def conv2d_valid(x: Tensor, weight: Tensor,
                 bias: Optional[Tensor] = None) -> Tensor:
    """2-D convolution, no padding ('valid').

    Shapes: ``x (batch, in_ch, H, W)``, ``weight (out_ch, in_ch, kh, kw)``,
    output ``(batch, out_ch, H-kh+1, W-kw+1)``.  Uses an im2col unfold so
    both passes are dense einsums.
    """
    batch, in_ch, height, width = x.shape
    out_ch, in_ch_w, kh, kw = weight.shape
    if in_ch != in_ch_w:
        raise ValueError(f"channel mismatch: x has {in_ch}, weight has {in_ch_w}")
    out_h, out_w = height - kh + 1, width - kw + 1
    if out_h < 1 or out_w < 1:
        raise ValueError("kernel larger than input")
    # windows: (batch, in_ch, out_h, out_w, kh, kw)
    windows = np.lib.stride_tricks.sliding_window_view(x.data, (kh, kw),
                                                       axis=(2, 3))
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch, out_h * out_w, in_ch * kh * kw)
    w2 = weight.data.reshape(out_ch, in_ch * kh * kw)
    out_data = np.einsum("bpf,of->bop", cols, w2).reshape(
        batch, out_ch, out_h, out_w)
    if bias is not None:
        out_data = out_data + bias.data[None, :, None, None]

    def backward(grad: np.ndarray) -> None:
        g2 = grad.reshape(batch, out_ch, out_h * out_w)
        if weight.requires_grad:
            gw = np.einsum("bop,bpf->of", g2, cols)
            weight._accumulate(gw.reshape(out_ch, in_ch, kh, kw))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            gcols = np.einsum("bop,of->bpf", g2, w2)
            gcols = gcols.reshape(batch, out_h, out_w, in_ch, kh, kw)
            gx = np.zeros_like(x.data)
            for i in range(kh):
                for j in range(kw):
                    gx[:, :, i:i + out_h, j:j + out_w] += (
                        gcols[:, :, :, :, i, j].transpose(0, 3, 1, 2))
            x._accumulate(gx)

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(out_data, parents, backward)



def conv1d_same(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """1-D convolution with 'same' zero padding.

    Shapes: ``x (batch, in_ch, width)``, ``weight (out_ch, in_ch, k)``,
    output ``(batch, out_ch, width)``.  Implemented via an im2col unfold so
    both passes are dense matmuls — vital for speed in pure numpy.
    """
    batch, in_ch, width = x.shape
    out_ch, in_ch_w, k = weight.shape
    if in_ch != in_ch_w:
        raise ValueError(f"channel mismatch: x has {in_ch}, weight has {in_ch_w}")
    pad_left = (k - 1) // 2
    pad_right = k - 1 - pad_left
    padded = np.pad(x.data, ((0, 0), (0, 0), (pad_left, pad_right)))
    # unfold: (batch, width, in_ch * k)
    cols = np.lib.stride_tricks.sliding_window_view(padded, k, axis=2)
    cols = cols.transpose(0, 2, 1, 3).reshape(batch * width, in_ch * k)
    w2 = weight.data.reshape(out_ch, in_ch * k)
    out_data = (cols @ w2.T).reshape(batch, width, out_ch).transpose(0, 2, 1)
    if bias is not None:
        out_data = out_data + bias.data[None, :, None]

    def backward(grad: np.ndarray) -> None:
        # grad: (batch, out_ch, width) -> (batch*width, out_ch)
        g2 = grad.transpose(0, 2, 1).reshape(batch * width, out_ch)
        if weight.requires_grad:
            weight._accumulate((g2.T @ cols).reshape(out_ch, in_ch, k))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2)))
        if x.requires_grad:
            gcols = (g2 @ w2).reshape(batch, width, in_ch, k)
            gcols = gcols.transpose(0, 2, 1, 3)
            gpad = np.zeros_like(padded)
            for j in range(k):
                gpad[:, :, j:j + width] += gcols[:, :, :, j]
            x._accumulate(gpad[:, :, pad_left:pad_left + width])

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(out_data, parents, backward)
