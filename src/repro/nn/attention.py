"""Multi-head self-attention (for the transformer-family baselines).

A compact scaled-dot-product attention stack on top of the autodiff
engine: linear Q/K/V projections, per-head softmax attention, optional
additive mask, and an output projection.  Used by the GHT-style
transformer baseline to encode a subject's history sequence.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import init as weight_init
from .modules import Linear, Module
from .ops import softmax
from .tensor import Tensor


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention over ``(batch, seq, dim)``."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, rng)
        self.k_proj = Linear(dim, dim, rng)
        self.v_proj = Linear(dim, dim, rng)
        self.out_proj = Linear(dim, dim, rng)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        # (b, s, d) -> (b, h, s, hd)
        return x.reshape(batch, seq, self.num_heads,
                         self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor,
                mask: Optional[np.ndarray] = None) -> Tensor:
        """Attend within each sequence.

        ``mask`` is an optional ``(seq, seq)`` additive mask (use large
        negative values to forbid positions, e.g. a causal mask).
        """
        batch, seq, _ = x.shape
        flat = x.reshape(batch * seq, self.dim)
        q = self._split_heads(self.q_proj(flat).reshape(batch, seq, self.dim),
                              batch, seq)
        k = self._split_heads(self.k_proj(flat).reshape(batch, seq, self.dim),
                              batch, seq)
        v = self._split_heads(self.v_proj(flat).reshape(batch, seq, self.dim),
                              batch, seq)
        scale = 1.0 / float(np.sqrt(self.head_dim))
        logits = (q @ k.transpose(0, 1, 3, 2)) * scale    # (b, h, s, s)
        if mask is not None:
            logits = logits + Tensor(mask.astype(logits.dtype))
        attn = softmax(logits, axis=-1)
        mixed = attn @ v                                   # (b, h, s, hd)
        merged = mixed.transpose(0, 2, 1, 3).reshape(batch * seq, self.dim)
        return self.out_proj(merged).reshape(batch, seq, self.dim)


def causal_mask(seq: int) -> np.ndarray:
    """Additive mask forbidding attention to future positions."""
    mask = np.triu(np.full((seq, seq), -1e9, dtype=np.float32), k=1)
    return mask
