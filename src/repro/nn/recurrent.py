"""Recurrent cells used by the snapshot-sequence evolution pipeline.

The paper evolves entity embeddings across the local snapshot window with
an entity-oriented GRU (Eq. 5) and evolves relation embeddings with a
sigmoid *time gate* (Eq. 7-8).  Both are implemented here.
"""

from __future__ import annotations

import numpy as np

from ..perf import FLAGS
from . import init as weight_init
from .modules import Module, Parameter
from .ops import concat, fused_gru_step
from .tensor import Tensor


class GRUCell(Module):
    """Single-step gated recurrent unit.

    Follows Cho et al. (2014):

    .. math::
        z = \\sigma(x W_{xz} + h W_{hz} + b_z) \\\\
        r = \\sigma(x W_{xr} + h W_{hr} + b_r) \\\\
        n = \\tanh(x W_{xn} + (r \\odot h) W_{hn} + b_n) \\\\
        h' = (1 - z) \\odot n + z \\odot h

    Inputs and hidden states are 2-D ``(rows, dim)`` — for LogCL the rows
    are *all entities* and one GRU step advances the whole embedding matrix
    by one snapshot (Eq. 5).
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.w_x = Parameter(weight_init.xavier_uniform((input_dim, 3 * hidden_dim), rng))
        self.w_h = Parameter(weight_init.xavier_uniform((hidden_dim, 3 * hidden_dim), rng))
        self.bias = Parameter(weight_init.zeros((3 * hidden_dim,)))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        d = self.hidden_dim
        if FLAGS.fused_kernels:
            return fused_gru_step(x, h, self.w_x, self.w_h, self.bias, d)
        gates_x = x @ self.w_x + self.bias
        gates_h = h @ self.w_h
        z = (gates_x[:, :d] + gates_h[:, :d]).sigmoid()
        r = (gates_x[:, d:2 * d] + gates_h[:, d:2 * d]).sigmoid()
        n = (gates_x[:, 2 * d:] + r * gates_h[:, 2 * d:]).tanh()
        return (1.0 - z) * n + z * h


class TimeGate(Module):
    """Sigmoid time gate for relation evolution (paper Eq. 7-8).

    .. math::
        U_t = \\sigma(W_3 R'_t + b) \\\\
        R_{t+1} = U_t \\odot R'_t + (1 - U_t) \\odot R_t
    """

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.weight = Parameter(weight_init.xavier_uniform((dim, dim), rng))
        self.bias = Parameter(weight_init.zeros((dim,)))

    def forward(self, candidate: Tensor, previous: Tensor) -> Tensor:
        gate = (candidate @ self.weight + self.bias).sigmoid()
        return gate * candidate + (1.0 - gate) * previous
