"""``repro.nn`` — a from-scratch numpy autodiff and neural-network stack.

This subpackage replaces PyTorch for the reproduction: reverse-mode
autodiff (:mod:`repro.nn.tensor`), functional ops including the
gather/scatter message-passing primitives (:mod:`repro.nn.ops`), layers
(:mod:`repro.nn.modules`, :mod:`repro.nn.recurrent`), losses
(:mod:`repro.nn.functional`) and optimizers (:mod:`repro.nn.optim`).
"""

from .tensor import Tensor, arange, no_grad, ones, tensor, zeros, zeros_like
from .modules import (BatchNorm1d, Dropout, Embedding, LayerNorm, Linear,
                      MLP, Module, Parameter, ReLU, Sequential, Tanh)
from .recurrent import GRUCell, TimeGate
from .optim import (SGD, Adam, CosineLR, Optimizer, RMSProp,
                    StepLR, clip_grad_norm)
from . import functional, init, ops

__all__ = [
    "Tensor", "tensor", "zeros", "ones", "zeros_like", "arange", "no_grad",
    "Module", "Parameter", "Linear", "Embedding", "Dropout", "LayerNorm",
    "Sequential", "MLP", "Tanh", "ReLU", "BatchNorm1d",
    "GRUCell", "TimeGate",
    "Optimizer", "Adam", "SGD", "RMSProp", "StepLR", "CosineLR",
    "clip_grad_norm",
    "functional", "ops", "init",
]
