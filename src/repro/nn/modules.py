"""Module/Parameter abstractions and common layers.

The :class:`Module` base class mirrors the PyTorch API surface that the
rest of the reproduction needs — recursive parameter discovery, train/eval
modes, and state-dict (de)serialization to plain numpy — without any of
the framework machinery we don't use.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import init as weight_init
from .dtypes import default_float
from .ops import dropout as dropout_op
from .tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as a trainable weight of a :class:`Module`."""

    def __init__(self, data: np.ndarray, name: Optional[str] = None):
        super().__init__(np.asarray(data), requires_grad=True, name=name)


class Module:
    """Base class for all neural network components.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; :meth:`parameters` discovers them recursively.  ``training``
    toggles dropout/RReLU behaviour through :meth:`train` / :meth:`eval`.
    """

    def __init__(self) -> None:
        self.training = True

    # -- parameter discovery -------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for attr, value in vars(self).items():
            name = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{name}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{name}.{i}.")
            elif isinstance(value, dict):
                for key, item in value.items():
                    if isinstance(item, Parameter):
                        yield f"{name}.{key}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{name}.{key}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # -- modes ----------------------------------------------------------------
    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in vars(self).values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)
            elif isinstance(value, dict):
                for item in value.values():
                    if isinstance(item, Module):
                        item._set_mode(training)

    # -- serialization ----------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy every parameter into a plain dict of numpy arrays."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters in place; shapes must match exactly."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, p in params.items():
            value = np.asarray(state[name])
            if value.shape != p.data.shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{value.shape} vs {p.data.shape}")
            p.data = value.astype(p.data.dtype, copy=True)

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Affine transform ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            weight_init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(weight_init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense rows."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator,
                 scale: Optional[float] = None):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        if scale is None:
            self.weight = Parameter(
                weight_init.xavier_normal((num_embeddings, dim), rng))
        else:
            self.weight = Parameter(
                weight_init.normal((num_embeddings, dim), rng, std=scale))

    def forward(self, index) -> Tensor:
        from .ops import index_select
        return index_select(self.weight, index)

    def all(self) -> Tensor:
        """Return the full table as a tensor (rows are ids in order)."""
        return self.weight


class Dropout(Module):
    """Inverted dropout layer; identity in eval mode."""

    def __init__(self, rate: float, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.rate = rate
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return dropout_op(x, self.rate, self.training, self.rng)


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim, dtype=default_float()))
        self.beta = Parameter(np.zeros(dim, dtype=default_float()))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class Sequential(Module):
    """Chain modules, feeding each output into the next."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class MLP(Module):
    """Multi-layer perceptron with tanh hidden activations.

    The paper's contrast module (Eq. 15-16) uses an MLP projection head
    that maps concatenated query features onto the unit sphere; callers
    apply :func:`repro.nn.ops.l2_normalize` on the output.
    """

    def __init__(self, dims: Sequence[int], rng: np.random.Generator,
                 activation: str = "tanh", dropout: float = 0.0):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        layers: List[Module] = []
        for i, (din, dout) in enumerate(zip(dims[:-1], dims[1:])):
            layers.append(Linear(din, dout, rng))
            is_last = i == len(dims) - 2
            if not is_last:
                layers.append(Tanh() if activation == "tanh" else ReLU())
                if dropout > 0:
                    layers.append(Dropout(dropout, rng))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)


class BatchNorm1d(Module):
    """Batch normalization over axis 0 with running statistics.

    Provided for CNN-decoder fidelity experiments (the official ConvE /
    ConvTransE implementations use batch norm; the defaults here use
    dropout-only stacks because the paper's per-timestamp batches vary
    widely in size, which makes batch statistics noisy).
    """

    def __init__(self, dim: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(dim, dtype=default_float()))
        self.beta = Parameter(np.zeros(dim, dtype=default_float()))
        self.running_mean = np.zeros(dim, dtype=default_float())
        self.running_var = np.ones(dim, dtype=default_float())

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mean = x.mean(axis=0, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=0, keepdims=True)
            # update running statistics outside the autodiff graph
            self.running_mean = ((1 - self.momentum) * self.running_mean
                                 + self.momentum * mean.data.reshape(-1))
            self.running_var = ((1 - self.momentum) * self.running_var
                                + self.momentum * var.data.reshape(-1))
            normed = centered / (var + self.eps).sqrt()
        else:
            mean = Tensor(self.running_mean[None, :])
            std = Tensor(np.sqrt(self.running_var + self.eps)[None, :])
            normed = (x - mean) / std
        return normed * self.gamma + self.beta
