"""Weight initialization schemes.

All initializers take an explicit ``numpy.random.Generator`` so that every
model in the reproduction is bit-for-bit reseedable; no global RNG state is
touched anywhere in :mod:`repro`.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from .dtypes import resolve_dtype


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator,
                   gain: float = 1.0, dtype=None) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a), a = gain * sqrt(6 / (fan_in+fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(resolve_dtype(dtype))


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator,
                  gain: float = 1.0, dtype=None) -> np.ndarray:
    """Glorot/Xavier normal: N(0, gain^2 * 2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return (rng.standard_normal(shape) * std).astype(resolve_dtype(dtype))


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator,
                    dtype=None) -> np.ndarray:
    """He uniform for ReLU-family activations."""
    fan_in, _ = _fans(shape)
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(resolve_dtype(dtype))


def normal(shape: Tuple[int, ...], rng: np.random.Generator,
           std: float = 0.02, dtype=None) -> np.ndarray:
    """Plain Gaussian initialization."""
    return (rng.standard_normal(shape) * std).astype(resolve_dtype(dtype))


def zeros(shape: Tuple[int, ...], dtype=None) -> np.ndarray:
    return np.zeros(shape, dtype=resolve_dtype(dtype))


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and conv weight shapes."""
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    # conv: (out_ch, in_ch, *kernel)
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
