"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the whole reproduction: the paper's model
(LogCL) and every baseline are ordinarily written against PyTorch, which is
unavailable in this environment, so we implement the differentiable-tensor
substrate ourselves.

The design follows the classic tape-free "define-by-run" scheme:

* :class:`Tensor` wraps a ``numpy.ndarray`` together with an optional
  gradient buffer and a closure that knows how to push gradients to the
  tensor's parents.
* Every differentiable operation builds a fresh ``Tensor`` whose
  ``_backward`` closure implements the local vector-Jacobian product.
* :meth:`Tensor.backward` topologically sorts the graph that produced a
  scalar loss and runs the closures in reverse order.

Gradients are plain ``numpy.ndarray`` objects stored on ``Tensor.grad`` and
accumulate across multiple backward paths, exactly like PyTorch's
``.grad`` semantics with ``retain_graph=False`` (we simply never free the
graph; tensors are garbage-collected with their closures).

Only float dtypes participate in differentiation.  Integer tensors are used
for indices (entity ids, relation ids) and never require gradients.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from .dtypes import resolve_dtype

Arrayish = Union["Tensor", np.ndarray, float, int, list, tuple]

_GRAD_ENABLED = True

# Memo of dtype -> "is floating" checks: np.issubdtype shows up in
# profiles when every op output re-derives it, and the answer is a pure
# function of the dtype object.
_FLOAT_DTYPES: dict = {}


def _is_float_dtype(dt) -> bool:
    cached = _FLOAT_DTYPES.get(dt)
    if cached is None:
        cached = bool(np.issubdtype(dt, np.floating))
        _FLOAT_DTYPES[dt] = cached
    return cached


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction.

    Used during evaluation loops where building backward closures would
    waste memory and time.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded for autodiff."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    When an operand of shape ``shape`` was broadcast up to ``grad.shape``
    during the forward pass, the chain rule requires summing the incoming
    gradient over every broadcast axis.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: Arrayish, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value)
    if dtype is not None:
        arr = arr.astype(dtype, copy=False)
    return arr


class Tensor:
    """A numpy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts.  Float data participates in
        differentiation; integer data is treated as constant indices.
    requires_grad:
        If ``True``, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data: Arrayish, requires_grad: bool = False,
                 name: Optional[str] = None):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data)
        if requires_grad and not _is_float_dtype(self.data.dtype):
            raise TypeError(
                f"only float tensors can require gradients, got {self.data.dtype}"
            )
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the autodiff graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Create an op output, recording the closure when grads are on."""
        needs = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=needs)
        if needs:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer."""
        if not self.requires_grad:
            return
        grad = np.asarray(grad, dtype=self.data.dtype)
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None or grad is self.data else grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (a scalar loss seeds with 1.0).
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without an explicit gradient "
                                 "requires a scalar tensor")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and (parent.requires_grad or parent._parents):
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: Arrayish) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        return Tensor(np.asarray(other, dtype=self.data.dtype))

    def __add__(self, other: Arrayish) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other: Arrayish) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(-grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other: Arrayish) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: Arrayish) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Arrayish) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data ** 2), other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: Arrayish) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(out_data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: Arrayish) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data)
                                     if self.data.ndim == 2 else grad * other.data)
                elif self.data.ndim == 1:
                    self._accumulate(grad @ other.data.T)
                else:
                    g = grad @ np.swapaxes(other.data, -1, -2)
                    self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad)
                                      if other.data.ndim == 2 else self.data * grad)
                elif other.data.ndim == 1:
                    other._accumulate(self.data.T @ grad)
                else:
                    g = np.swapaxes(self.data, -1, -2) @ grad
                    other._accumulate(_unbroadcast(g, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # comparisons (constants — no gradient)
    # ------------------------------------------------------------------
    def __gt__(self, other: Arrayish) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: Arrayish) -> np.ndarray:
        return self.data < _as_array(other)

    def __ge__(self, other: Arrayish) -> np.ndarray:
        return self.data >= _as_array(other)

    def __le__(self, other: Arrayish) -> np.ndarray:
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------
    # shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        if isinstance(index, Tensor):
            index = index.data
        out_data = self.data[index]
        shape = self.shape
        dtype = self.data.dtype

        def backward(grad: np.ndarray) -> None:
            full = np.zeros(shape, dtype=dtype)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def expand(self, *shape: int) -> "Tensor":
        out_data = np.broadcast_to(self.data, shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, original))

        return Tensor._make(np.ascontiguousarray(out_data), (self,), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.shape

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.mean(axis=axis, keepdims=keepdims)
        shape = self.shape
        count = self.data.size if axis is None else np.prod(
            [shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))])

        def backward(grad: np.ndarray) -> None:
            g = grad / count
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = out_data
            g = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(out_data, axis)
                g = np.expand_dims(grad, axis)
            mask = (self.data == expanded)
            counts = mask.sum(axis=axis, keepdims=True)
            self._accumulate(mask * g / counts)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # element-wise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / np.maximum(out_data, 1e-12))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (self.data > 0))

        return Tensor._make(out_data, (self,), backward)

    def leaky_relu(self, slope: float = 0.01) -> "Tensor":
        out_data = np.where(self.data > 0, self.data, slope * self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.where(self.data > 0, 1.0, slope))

        return Tensor._make(out_data, (self,), backward)

    def cos(self) -> "Tensor":
        out_data = np.cos(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad * np.sin(self.data))

        return Tensor._make(out_data, (self,), backward)

    def sin(self) -> "Tensor":
        out_data = np.sin(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.cos(self.data))

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            mask = (self.data >= low) & (self.data <= high)
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)


def tensor(data: Arrayish, requires_grad: bool = False,
           dtype=None) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``.

    Float data is narrowed to the :mod:`repro.nn.dtypes` policy default
    (float32) unless an explicit ``dtype`` is given.
    """
    if isinstance(data, Tensor):
        data = data.data
    arr = np.asarray(data)
    if _is_float_dtype(arr.dtype):
        arr = arr.astype(resolve_dtype(dtype), copy=False)
    return Tensor(arr, requires_grad=requires_grad)


def zeros(*shape: int, requires_grad: bool = False, dtype=None) -> Tensor:
    return Tensor(np.zeros(shape, dtype=resolve_dtype(dtype)),
                  requires_grad=requires_grad)


def ones(*shape: int, requires_grad: bool = False, dtype=None) -> Tensor:
    return Tensor(np.ones(shape, dtype=resolve_dtype(dtype)),
                  requires_grad=requires_grad)


def zeros_like(t: Tensor, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros_like(t.data), requires_grad=requires_grad)


def arange(*args, dtype=np.int64) -> Tensor:
    return Tensor(np.arange(*args, dtype=dtype))
