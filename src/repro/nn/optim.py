"""Optimizers and gradient utilities.

The paper trains with Adam (lr=0.001); SGD with momentum is provided for
ablation/benchmark purposes.  Gradient clipping matches the clip-by-global-
norm behaviour of ``torch.nn.utils.clip_grad_norm_``.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..perf import FLAGS
from .modules import Parameter


class Optimizer:
    """Base optimizer: holds parameter references and clears gradients."""

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data = p.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction.

    This is the optimizer the paper uses for LogCL and all re-implemented
    baselines (learning rate 0.001 in the paper's setting).
    """

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas: Sequence[float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        # Per-parameter scratch buffer: the update below runs entirely
        # through ``out=`` ufuncs, so one reusable buffer per parameter
        # replaces the eight temporaries the textbook form allocates.
        self._scratch = [np.empty_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step += 1
        bc1 = 1.0 - self.beta1 ** self._step
        bc2 = 1.0 - self.beta2 ** self._step
        inplace = FLAGS.inplace_optim
        for p, m, v, buf in zip(self.params, self._m, self._v, self._scratch):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if not inplace:
                # Textbook form (pre-pass path): ~8 temporaries per param.
                m *= self.beta1
                m += (1.0 - self.beta1) * grad
                v *= self.beta2
                v += (1.0 - self.beta2) * grad * grad
                m_hat = m / bc1
                v_hat = v / bc2
                p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat)
                                                     + self.eps)
                continue
            # m = b1*m + (1-b1)*g ; v = b2*v + (1-b2)*g^2, allocation-free
            np.multiply(grad, 1.0 - self.beta1, out=buf)
            m *= self.beta1
            m += buf
            np.multiply(grad, grad, out=buf)
            buf *= 1.0 - self.beta2
            v *= self.beta2
            v += buf
            # p -= (lr/bc1) * m / (sqrt(v/bc2) + eps) — algebraically the
            # bias-corrected update, with the scalar factors folded.
            np.divide(v, bc2, out=buf)
            np.sqrt(buf, out=buf)
            buf += self.eps
            np.divide(m, buf, out=buf)
            buf *= self.lr / bc1
            p.data -= buf


def clip_grad_norm(params: Iterable[Parameter], max_norm: float,
                   telemetry=None) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm, matching the PyTorch utility's contract.
    When a :class:`repro.obs.Telemetry` is given, the pre/post-clip norms
    are observed as ``grad_norm_preclip`` / ``grad_norm_postclip`` and a
    ``grad_clips`` counter tracks how often the threshold engaged — the
    norm is already computed here, so the hook costs nothing extra.
    """
    params = [p for p in params if p.grad is not None]
    if FLAGS.inplace_optim:
        # np.dot on the raveled gradient skips the squared temporary.
        total = math.sqrt(sum(
            float(np.dot(g, g)) for g in
            (p.grad.ravel() for p in params)))
    else:
        total = math.sqrt(sum(float((p.grad ** 2).sum()) for p in params))
    clipped = total > max_norm and total > 0
    if clipped:
        scale = max_norm / (total + 1e-12)
        for p in params:
            p.grad = p.grad * scale
    if telemetry is not None:
        telemetry.observe("grad_norm_preclip", total)
        telemetry.observe("grad_norm_postclip",
                          total * scale if clipped else total)
        if clipped:
            telemetry.incr("grad_clips")
    return total


class StepLR:
    """Multiply the optimizer lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma


class RMSProp(Optimizer):
    """RMSProp with optional momentum — provided for optimizer ablations."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 alpha: float = 0.99, eps: float = 1e-8,
                 momentum: float = 0.0):
        super().__init__(params, lr)
        self.alpha = alpha
        self.eps = eps
        self.momentum = momentum
        self._sq = [np.zeros_like(p.data) for p in self.params]
        self._buf = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, sq, buf in zip(self.params, self._sq, self._buf):
            if p.grad is None:
                continue
            grad = p.grad
            sq *= self.alpha
            sq += (1.0 - self.alpha) * grad * grad
            update = grad / (np.sqrt(sq) + self.eps)
            if self.momentum:
                buf *= self.momentum
                buf += update
                update = buf
            p.data = p.data - self.lr * update


class CosineLR:
    """Cosine-anneal the lr from its initial value to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int,
                 min_lr: float = 0.0):
        if total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        self.optimizer = optimizer
        self.total_epochs = total_epochs
        self.min_lr = min_lr
        self._initial = optimizer.lr
        self._epoch = 0

    def step(self) -> None:
        self._epoch = min(self._epoch + 1, self.total_epochs)
        progress = self._epoch / self.total_epochs
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        self.optimizer.lr = self.min_lr + (self._initial - self.min_lr) * cosine
