"""Filtered-ranking kernels shared by the offline and online protocols.

Both kernels take one timestamp batch's ``(Q, |E|)`` score matrix and
produce the 1-based mean-tie filtered ranks of the gold objects; they
agree bitwise (asserted by the parity tests).  They only read the
``subjects`` / ``relations`` / ``objects`` / ``time`` attributes of the
batch, so any :class:`repro.training.context.TimestepBatch`-shaped
object works.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tkg.filtering import StaticFilter, TimeAwareFilter
from .metrics import rank_of_target, ranks_of_targets


def batch_ranks_vectorized(scores: np.ndarray, batch,
                           time_filter: Optional[TimeAwareFilter],
                           static_filter: Optional[StaticFilter] = None
                           ) -> np.ndarray:
    """Filtered ranks for one batch via the packed-index kernel.

    Competing true objects are struck to ``-inf`` with a single
    fancy-index assignment on the ``(Q, |E|)`` matrix and all ranks come
    out of one broadcasted comparison — no per-query score copies.
    """
    active = time_filter if time_filter is not None else static_filter
    if active is not None:
        rows, cols = active.mask_indices_for_batch(
            batch.subjects, batch.relations, batch.time, batch.objects)
        if len(rows):
            scores = scores.copy()
            scores[rows, cols] = -np.inf
    return ranks_of_targets(scores, batch.objects)


def batch_ranks_per_query(scores: np.ndarray, batch,
                          time_filter: Optional[TimeAwareFilter],
                          static_filter: Optional[StaticFilter] = None
                          ) -> np.ndarray:
    """Legacy reference path: one score copy + scalar rank per query."""
    ranks = np.empty(len(batch), dtype=float)
    for row, (s, r, o) in enumerate(zip(batch.subjects, batch.relations,
                                        batch.objects)):
        query_scores = scores[row]
        if time_filter is not None:
            query_scores = time_filter.filter_scores(
                query_scores, int(s), int(r), batch.time, int(o))
        elif static_filter is not None:
            query_scores = static_filter.filter_scores(
                query_scores, int(s), int(r), int(o))
        ranks[row] = rank_of_target(query_scores, int(o))
    return ranks
