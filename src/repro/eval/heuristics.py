"""Non-learned reference scorers: frequency and recency heuristics.

These two oracles bound what *static memorization* and *pure recency*
can achieve on a dataset, which makes them invaluable diagnostics:

* a learned static model (DistMult & co.) cannot beat
  :class:`FrequencyHeuristic` in expectation — it *is* the static
  channel's ceiling;
* :class:`RecencyHeuristic` is the trivial temporal strategy ("predict
  whatever answered this query most recently"); temporal models should
  beat it by exploiting structure (succession, periodicity).

Both implement the standard :class:`repro.interface.ExtrapolationModel`
surface so they plug into ``repro.eval.evaluate`` directly.  They have no
parameters; ``loss_on`` raises.
"""

from __future__ import annotations

import numpy as np

from ..interface import ExtrapolationModel
from ..nn import Tensor


class FrequencyHeuristic(ExtrapolationModel):
    """Scores candidates by historical co-occurrence count with (s, r)."""

    def __init__(self, num_entities: int):
        super().__init__()
        self.num_entities = num_entities

    def predict_on(self, batch) -> np.ndarray:
        index = batch.history_index
        scores = np.zeros((len(batch), self.num_entities), dtype=np.float64)
        for row, (s, r) in enumerate(zip(batch.subjects, batch.relations)):
            for obj, count in index.answer_counts(int(s), int(r)).items():
                scores[row, obj] = count
        return scores

    def loss_on(self, batch) -> Tensor:
        raise TypeError("heuristic scorers have no parameters to train")


class RecencyHeuristic(ExtrapolationModel):
    """Scores candidates by how recently they answered (s, r).

    The most recent historical answer gets the highest score; entities
    that never answered score zero.
    """

    def __init__(self, num_entities: int):
        super().__init__()
        self.num_entities = num_entities
        self._last_seen = {}
        self._horizon = -1
        self._source_index = None

    def predict_on(self, batch) -> np.ndarray:
        self._ingest(batch)
        scores = np.zeros((len(batch), self.num_entities), dtype=np.float64)
        for row, (s, r) in enumerate(zip(batch.subjects, batch.relations)):
            for obj, t in self._last_seen.get((int(s), int(r)), {}).items():
                scores[row, obj] = t + 1.0
        return scores

    def _ingest(self, batch) -> None:
        """Record last-seen times from the shared history index facts.

        State accumulates incrementally while the same history index
        advances forward; when the batch carries a *different* index (a
        fresh evaluation pass, possibly on another dataset) or one whose
        horizon rewound, the accumulated ``_last_seen`` map would poison
        the new run, so it is rebuilt from scratch.
        """
        index = batch.history_index
        if index is not self._source_index or index.horizon < self._horizon:
            self._last_seen = {}
            self._horizon = -1
            self._source_index = index
        # walk only the newly indexed facts since the previous call
        for s, r, o, t in index.facts_since(self._horizon):
            self._last_seen.setdefault((int(s), int(r)), {})[int(o)] = int(t)
        self._horizon = batch.time

    def loss_on(self, batch) -> Tensor:
        raise TypeError("heuristic scorers have no parameters to train")
