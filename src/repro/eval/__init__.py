"""``repro.eval`` — MRR / Hits@k and the time-aware filtered protocol."""

from .heuristics import FrequencyHeuristic, RecencyHeuristic
from .metrics import (RankingAccumulator, rank_of_target, ranks_of_targets,
                      softmax_topk)
from .protocol import FILTER_SETTINGS, evaluate, format_metric_row

__all__ = ["RankingAccumulator", "rank_of_target", "ranks_of_targets",
           "softmax_topk", "evaluate", "format_metric_row",
           "FILTER_SETTINGS", "FrequencyHeuristic", "RecencyHeuristic"]
