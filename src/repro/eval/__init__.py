"""``repro.eval`` — MRR / Hits@k and the time-aware filtered protocol."""

from .heuristics import FrequencyHeuristic, RecencyHeuristic
from .metrics import (RankingAccumulator, rank_of_target, ranks_of_targets,
                      softmax_topk)
from .protocol import FILTER_SETTINGS, evaluate, format_metric_row
from .ranking import batch_ranks_per_query, batch_ranks_vectorized

__all__ = ["RankingAccumulator", "rank_of_target", "ranks_of_targets",
           "softmax_topk", "evaluate", "format_metric_row",
           "FILTER_SETTINGS", "FrequencyHeuristic", "RecencyHeuristic",
           "batch_ranks_vectorized", "batch_ranks_per_query"]
