"""Ranking metrics: MRR and Hits@k (paper §IV-B1).

Ranks are 1-based with *mean* tie-breaking: a target tied with ``k``
other candidates gets the average of the tied positions.  This matches
the expectation of the random tie-breaking used by sort-based PyTorch
evaluation code and — unlike the optimistic convention — does not reward
degenerate constant scorers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np


def rank_of_target(scores: np.ndarray, target: int) -> float:
    """1-based mean-tie rank of ``target`` within ``scores``."""
    target_score = scores[target]
    greater = int((scores > target_score).sum())
    ties = int((scores == target_score).sum())  # includes the target itself
    return greater + (ties + 1) / 2.0


@dataclass
class RankingAccumulator:
    """Streaming collector of per-query ranks."""

    ranks: List[float] = field(default_factory=list)

    def add(self, rank: float) -> None:
        if rank < 1:
            raise ValueError(f"ranks are 1-based, got {rank}")
        self.ranks.append(float(rank))

    def add_batch(self, scores: np.ndarray, targets: Sequence[int]) -> None:
        """Rank a (Q, |E|) score matrix against per-row targets."""
        for row, target in zip(scores, targets):
            self.add(rank_of_target(row, int(target)))

    def merge(self, other: "RankingAccumulator") -> None:
        self.ranks.extend(other.ranks)

    # -- metrics ----------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self.ranks)

    def mrr(self) -> float:
        """Mean reciprocal rank, in percent (paper convention)."""
        if not self.ranks:
            return 0.0
        return float(np.mean(1.0 / np.asarray(self.ranks))) * 100.0

    def hits_at(self, k: int) -> float:
        """Fraction of queries ranked in the top-k, in percent."""
        if not self.ranks:
            return 0.0
        return float(np.mean(np.asarray(self.ranks) <= k)) * 100.0

    def summary(self, ks: Iterable[int] = (1, 3, 10)) -> Dict[str, float]:
        """The paper's standard metric row."""
        result = {"mrr": self.mrr(), "count": float(self.count)}
        for k in ks:
            result[f"hits@{k}"] = self.hits_at(k)
        return result
