"""Ranking metrics: MRR and Hits@k (paper §IV-B1).

Ranks are 1-based with *mean* tie-breaking: a target tied with ``k``
other candidates gets the average of the tied positions.  This matches
the expectation of the random tie-breaking used by sort-based PyTorch
evaluation code and — unlike the optimistic convention — does not reward
degenerate constant scorers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np


def rank_of_target(scores: np.ndarray, target: int) -> float:
    """1-based mean-tie rank of ``target`` within ``scores``."""
    target_score = scores[target]
    greater = int((scores > target_score).sum())
    ties = int((scores == target_score).sum())  # includes the target itself
    return greater + (ties + 1) / 2.0


def ranks_of_targets(scores: np.ndarray,
                     targets: Sequence[int]) -> np.ndarray:
    """1-based mean-tie ranks of per-row targets, in one broadcasted pass.

    Vectorized equivalent of calling :func:`rank_of_target` on every row
    of a ``(Q, |E|)`` score matrix — the comparison semantics (strictly-
    greater count plus mean tie position, ``-inf`` ties included) are
    identical, so the two agree bitwise.
    """
    scores = np.asarray(scores)
    targets = np.asarray(targets, dtype=np.int64)
    if scores.ndim != 2 or targets.ndim != 1 or len(scores) != len(targets):
        raise ValueError(f"expected (Q, E) scores with Q aligned targets, "
                         f"got {scores.shape} and {targets.shape}")
    target_scores = scores[np.arange(len(targets)), targets][:, None]
    greater = (scores > target_scores).sum(axis=1)
    ties = (scores == target_scores).sum(axis=1)  # includes the target
    return greater + (ties + 1) / 2.0


def softmax_topk(scores: np.ndarray, k: int) -> List[Tuple[int, float]]:
    """Top-k ``(entity, probability)`` pairs with a stable tie order.

    The softmax is max-shifted over the finite entries; ``-inf`` scores
    (filtered-out candidates) get probability zero.  Ties rank lower
    entity ids first (stable sort), so repeated calls and the several
    top-k front-ends (model, engine, micro-batcher) agree exactly.
    """
    scores = np.asarray(scores)
    finite = np.isfinite(scores)
    shift = scores[finite].max() if finite.any() else 0.0
    exp = np.exp(np.where(finite, scores - shift, -np.inf))
    total = exp.sum()
    probs = (exp / total if total > 0
             else np.full(len(scores), 1.0 / len(scores)))
    if k <= 0:
        return []
    if k >= len(probs):
        top = np.argsort(-probs, kind="stable")
    else:
        # O(n + k log k) instead of a full O(n log n) sort: partition out
        # k candidates, then reconstruct the exact stable-sort answer —
        # everything strictly above the boundary value, plus boundary
        # ties in ascending-id order (what a stable descending sort
        # would have kept), ordered by (probability desc, id asc).
        partitioned = np.argpartition(-probs, k - 1)[:k]
        boundary = probs[partitioned].min()
        above = np.flatnonzero(probs > boundary)
        at_boundary = np.flatnonzero(probs == boundary)
        chosen = np.concatenate([above, at_boundary[:k - len(above)]])
        top = chosen[np.lexsort((chosen, -probs[chosen]))]
    return [(int(e), float(probs[e])) for e in top]


@dataclass
class RankingAccumulator:
    """Streaming collector of per-query ranks."""

    ranks: List[float] = field(default_factory=list)

    def add(self, rank: float) -> None:
        if rank < 1:
            raise ValueError(f"ranks are 1-based, got {rank}")
        self.ranks.append(float(rank))

    def add_batch(self, scores: np.ndarray, targets: Sequence[int]) -> None:
        """Rank a (Q, |E|) score matrix against per-row targets."""
        self.add_ranks(ranks_of_targets(scores, targets))

    def add_ranks(self, ranks: Sequence[float]) -> None:
        """Append precomputed 1-based ranks (one per query)."""
        ranks = np.asarray(ranks, dtype=float)
        if len(ranks) and float(ranks.min()) < 1:
            raise ValueError(f"ranks are 1-based, got {float(ranks.min())}")
        self.ranks.extend(ranks.tolist())

    def merge(self, other: "RankingAccumulator") -> None:
        self.ranks.extend(other.ranks)

    # -- metrics ----------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self.ranks)

    def mrr(self) -> float:
        """Mean reciprocal rank, in percent (paper convention)."""
        if not self.ranks:
            return 0.0
        return float(np.mean(1.0 / np.asarray(self.ranks))) * 100.0

    def hits_at(self, k: int) -> float:
        """Fraction of queries ranked in the top-k, in percent."""
        if not self.ranks:
            return 0.0
        return float(np.mean(np.asarray(self.ranks) <= k)) * 100.0

    def summary(self, ks: Iterable[int] = (1, 3, 10)) -> Dict[str, float]:
        """The paper's standard metric row."""
        result = {"mrr": self.mrr(), "count": float(self.count)}
        for k in ks:
            result[f"hits@{k}"] = self.hits_at(k)
        return result
