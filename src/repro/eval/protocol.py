"""End-to-end evaluation protocol for TKG extrapolation.

Implements the paper's reported setting: per-timestamp query batches over
a chronological split, two-phase (original + inverse) queries, and the
**time-aware filtered** ranking (only facts true at the query timestamp
are removed from the candidate list).  Raw and static-filtered settings
are also available for comparison.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..interface import ExtrapolationModel
from ..nn.tensor import no_grad
from ..obs import NULL_TELEMETRY, Telemetry
from ..perf import FLAGS
from ..tkg.dataset import TKGDataset
from ..tkg.filtering import StaticFilter, TimeAwareFilter
from ..training.context import (PHASES, HistoryContext,
                                iter_timestep_batches)
from .metrics import RankingAccumulator
from .ranking import batch_ranks_per_query, batch_ranks_vectorized

FILTER_SETTINGS = ("time-aware", "raw", "static")

# Backwards-compatible aliases: the kernels moved to repro.eval.ranking
# so the online protocol can share them without an import cycle.
_batch_ranks_vectorized = batch_ranks_vectorized
_batch_ranks_per_query = batch_ranks_per_query

# Dataset-keyed memo of evaluation filters.  Building a TimeAwareFilter
# walks every quadruple of every split in python; repeated evaluations
# of one benchmark (training-loop eval epochs, the benchmark tables, the
# per-filter parity sweep) used to pay that walk each call.  Entries
# hold a strong reference to the dataset so an ``id()`` can never be
# recycled while its entry is alive; ``evaluate``-built filters are
# read-only (nothing calls ``add_facts`` on them), which is what makes
# sharing safe.  Gated by ``FLAGS.filter_cache``.
_FILTER_MEMO: "OrderedDict[Tuple[int, str], tuple]" = OrderedDict()
_FILTER_MEMO_LIMIT = 8


def _build_filters(dataset: TKGDataset, filter_setting: str
                   ) -> Tuple[Optional[TimeAwareFilter], Optional[StaticFilter]]:
    """The (time_filter, static_filter) pair for one setting, memoized.

    The raw setting indexes nothing — the inverse-augmented fact build
    is skipped entirely rather than constructed and discarded.
    """
    if filter_setting == "raw":
        return None, None
    key = (id(dataset), filter_setting)
    if FLAGS.filter_cache:
        entry = _FILTER_MEMO.get(key)
        if entry is not None and entry[0] is dataset:
            _FILTER_MEMO.move_to_end(key)
            return entry[1], entry[2]
    # Filters must see the inverse-augmented facts of every split so
    # that inverse-phase queries are filtered symmetrically.
    augmented = [quads.with_inverses(dataset.num_relations)
                 for quads in dataset.splits().values()]
    time_filter = (TimeAwareFilter(augmented)
                   if filter_setting == "time-aware" else None)
    static_filter = (StaticFilter(augmented)
                     if filter_setting == "static" else None)
    if FLAGS.filter_cache:
        _FILTER_MEMO[key] = (dataset, time_filter, static_filter)
        if len(_FILTER_MEMO) > _FILTER_MEMO_LIMIT:
            _FILTER_MEMO.popitem(last=False)
    return time_filter, static_filter


def reuse_context_enabled(model) -> bool:
    """Whether per-timestamp encoder contexts may be shared across the
    forward/inverse phases of one timestamp.

    Requires the split ``precompute_context`` / ``encode_queries`` /
    ``score_queries`` API (documented numerically identical to
    ``encode``) and a noise-free model — with ``input_noise_std > 0``
    the serial protocol draws fresh noise per batch, so phases must not
    share one perturbed context.
    """
    return (FLAGS.reuse_eval_context
            and hasattr(model, "precompute_context")
            and hasattr(model, "encode_queries")
            and hasattr(model, "score_queries")
            and getattr(model, "input_noise_std", 0.0) <= 0.0)


def predict_scores_reusing(model, batch, memo: dict):
    """``model.predict_on(batch)`` sharing one context per timestamp.

    ``memo`` maps a timestamp to its precomputed query-independent
    context; batches walk time monotonically, so only the current
    timestamp is kept.  Bitwise-identical to the direct path: the
    context is query-independent and ``encode_queries`` on it is the
    exact tail of ``encode``.
    """
    with no_grad():
        context = memo.get(batch.time)
        if context is None:
            memo.clear()
            context = model.precompute_context(batch.snapshots, batch.time)
            memo[batch.time] = context
        encoded = model.encode_queries(context, batch.subjects,
                                       batch.relations, batch.global_edges)
        logits = model.score_queries(encoded, batch.subjects,
                                     batch.relations)
    return logits.data


@dataclass(frozen=True)
class QueryRecord:
    """One evaluated query with its filtered rank.

    ``phase`` distinguishes forward from inverse queries; for inverse
    queries ``relation`` already carries the inverse-space id.
    """

    subject: int
    relation: int
    gold_object: int
    time: int
    phase: str
    rank: float


def evaluate(model: ExtrapolationModel, dataset: TKGDataset, split: str,
             context: Optional[HistoryContext] = None, window: int = 3,
             filter_setting: str = "time-aware",
             phases: Sequence[str] = PHASES,
             records: Optional[List[QueryRecord]] = None,
             batched: bool = True,
             workers: int = 1,
             telemetry: Telemetry = NULL_TELEMETRY) -> Dict[str, float]:
    """Evaluate ``model`` on one split and return the paper's metric row.

    Parameters
    ----------
    model:
        Any :class:`repro.interface.ExtrapolationModel`.  Its train/eval
        mode is restored on return, so live models owned by a serving
        engine can be evaluated without clobbering their state.
    dataset, split:
        Benchmark and split name (``"valid"`` / ``"test"``).
    context:
        Optional pre-built history context (reused by trainers); a fresh
        one is created otherwise.  The context is reset before the pass so
        its monotonic global index starts clean.
    filter_setting:
        ``"time-aware"`` (paper), ``"raw"`` or ``"static"``.
    phases:
        Propagation phases to evaluate (Table VII uses single phases).
    records:
        Optional list that, when provided, receives one
        :class:`QueryRecord` per evaluated query — the input to
        per-pattern analysis (:mod:`repro.analysis`).
    batched:
        Use the vectorized filter+rank kernel (default).  ``False``
        selects the legacy per-query path; both produce bitwise-identical
        ranks (asserted by the parity tests).
    workers:
        Shard the pass across this many forked worker processes
        (:mod:`repro.parallel`).  Metric rows are bitwise-identical to
        ``workers=1`` for every worker count (see
        ``docs/parallel.md``); ``1`` (default) keeps the classic serial
        walk in-process.
    telemetry:
        Optional :class:`repro.obs.Telemetry`; when given, the pass
        records ``context_build`` (history/filter construction),
        ``forward`` (model scoring, including lazy window/subgraph
        materialization) and ``rank`` (filtered ranking) spans plus a
        ``queries_evaluated`` counter, and is bound to the shared
        history cache so its ``subgraph_cache_hits``/``_misses``
        counters surface too.  Defaults to the inert null telemetry.
    """
    if filter_setting not in FILTER_SETTINGS:
        raise ValueError(f"filter_setting must be one of {FILTER_SETTINGS}")
    with telemetry.span("context_build"):
        if context is None:
            context = HistoryContext(dataset, window=window,
                                     telemetry=telemetry)
        elif telemetry is not NULL_TELEMETRY:
            context.bind_telemetry(telemetry)
        context.reset()
        time_filter, static_filter = _build_filters(dataset, filter_setting)

    was_training = bool(getattr(model, "training", False))
    model.eval()
    accumulator = RankingAccumulator()
    if workers != 1:
        # Lazy import: repro.parallel is an execution detail, and eager
        # importing it here would cycle back through repro.eval.
        from ..parallel.evaluation import sharded_ranks
        batches = list(iter_timestep_batches(dataset, split, context,
                                             phases=phases))
        all_ranks = sharded_ranks(model, batches, time_filter, static_filter,
                                  batched=batched, workers=workers,
                                  telemetry=telemetry)
        for batch, ranks in zip(batches, all_ranks):
            accumulator.add_ranks(ranks)
            if records is not None:
                _record_batch(records, batch, ranks)
    else:
        rank_batch = (batch_ranks_vectorized if batched
                      else batch_ranks_per_query)
        # Forward and inverse batches of one timestamp share the
        # query-independent encoder context (window walk + base
        # embeddings) instead of recomputing it per phase.
        context_memo = {} if reuse_context_enabled(model) else None
        for batch in iter_timestep_batches(dataset, split, context,
                                           phases=phases):
            with telemetry.span("forward"):
                scores = (predict_scores_reusing(model, batch, context_memo)
                          if context_memo is not None
                          else model.predict_on(batch))
            with telemetry.span("rank"):
                ranks = rank_batch(scores, batch, time_filter, static_filter)
            accumulator.add_ranks(ranks)
            telemetry.incr("queries_evaluated", len(batch))
            if records is not None:
                _record_batch(records, batch, ranks)
    if was_training:
        model.train()
    else:
        model.eval()
    return accumulator.summary()


def _record_batch(records: List[QueryRecord], batch, ranks) -> None:
    """Append one batch's per-query records in row order."""
    for row, (s, r, o) in enumerate(zip(batch.subjects, batch.relations,
                                        batch.objects)):
        records.append(QueryRecord(
            subject=int(s), relation=int(r), gold_object=int(o),
            time=batch.time, phase=batch.phase, rank=float(ranks[row])))


def format_metric_row(name: str, metrics: Dict[str, float]) -> str:
    """Render one model's metrics like a row of the paper's tables."""
    return (f"{name:24s} MRR {metrics['mrr']:6.2f}  "
            f"H@1 {metrics['hits@1']:6.2f}  "
            f"H@3 {metrics['hits@3']:6.2f}  "
            f"H@10 {metrics['hits@10']:6.2f}")
