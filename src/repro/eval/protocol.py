"""End-to-end evaluation protocol for TKG extrapolation.

Implements the paper's reported setting: per-timestamp query batches over
a chronological split, two-phase (original + inverse) queries, and the
**time-aware filtered** ranking (only facts true at the query timestamp
are removed from the candidate list).  Raw and static-filtered settings
are also available for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..interface import ExtrapolationModel
from ..tkg.dataset import TKGDataset
from ..tkg.filtering import StaticFilter, TimeAwareFilter
from ..training.context import (PHASES, HistoryContext, TimestepBatch,
                                iter_timestep_batches)
from .metrics import RankingAccumulator, rank_of_target, ranks_of_targets

FILTER_SETTINGS = ("time-aware", "raw", "static")


@dataclass(frozen=True)
class QueryRecord:
    """One evaluated query with its filtered rank.

    ``phase`` distinguishes forward from inverse queries; for inverse
    queries ``relation`` already carries the inverse-space id.
    """

    subject: int
    relation: int
    gold_object: int
    time: int
    phase: str
    rank: float


def _batch_ranks_vectorized(scores: np.ndarray, batch: TimestepBatch,
                            time_filter: Optional[TimeAwareFilter],
                            static_filter: Optional[StaticFilter]
                            ) -> np.ndarray:
    """Filtered ranks for one batch via the packed-index kernel.

    Competing true objects are struck to ``-inf`` with a single
    fancy-index assignment on the ``(Q, |E|)`` matrix and all ranks come
    out of one broadcasted comparison — no per-query score copies.
    """
    active = time_filter if time_filter is not None else static_filter
    if active is not None:
        rows, cols = active.mask_indices_for_batch(
            batch.subjects, batch.relations, batch.time, batch.objects)
        if len(rows):
            scores = scores.copy()
            scores[rows, cols] = -np.inf
    return ranks_of_targets(scores, batch.objects)


def _batch_ranks_per_query(scores: np.ndarray, batch: TimestepBatch,
                           time_filter: Optional[TimeAwareFilter],
                           static_filter: Optional[StaticFilter]
                           ) -> np.ndarray:
    """Legacy reference path: one score copy + scalar rank per query."""
    ranks = np.empty(len(batch), dtype=float)
    for row, (s, r, o) in enumerate(zip(batch.subjects, batch.relations,
                                        batch.objects)):
        query_scores = scores[row]
        if time_filter is not None:
            query_scores = time_filter.filter_scores(
                query_scores, int(s), int(r), batch.time, int(o))
        elif static_filter is not None:
            query_scores = static_filter.filter_scores(
                query_scores, int(s), int(r), int(o))
        ranks[row] = rank_of_target(query_scores, int(o))
    return ranks


def evaluate(model: ExtrapolationModel, dataset: TKGDataset, split: str,
             context: Optional[HistoryContext] = None, window: int = 3,
             filter_setting: str = "time-aware",
             phases: Sequence[str] = PHASES,
             records: Optional[List[QueryRecord]] = None,
             batched: bool = True) -> Dict[str, float]:
    """Evaluate ``model`` on one split and return the paper's metric row.

    Parameters
    ----------
    model:
        Any :class:`repro.interface.ExtrapolationModel`.  Its train/eval
        mode is restored on return, so live models owned by a serving
        engine can be evaluated without clobbering their state.
    dataset, split:
        Benchmark and split name (``"valid"`` / ``"test"``).
    context:
        Optional pre-built history context (reused by trainers); a fresh
        one is created otherwise.  The context is reset before the pass so
        its monotonic global index starts clean.
    filter_setting:
        ``"time-aware"`` (paper), ``"raw"`` or ``"static"``.
    phases:
        Propagation phases to evaluate (Table VII uses single phases).
    records:
        Optional list that, when provided, receives one
        :class:`QueryRecord` per evaluated query — the input to
        per-pattern analysis (:mod:`repro.analysis`).
    batched:
        Use the vectorized filter+rank kernel (default).  ``False``
        selects the legacy per-query path; both produce bitwise-identical
        ranks (asserted by the parity tests).
    """
    if filter_setting not in FILTER_SETTINGS:
        raise ValueError(f"filter_setting must be one of {FILTER_SETTINGS}")
    if context is None:
        context = HistoryContext(dataset, window=window)
    context.reset()

    # Filters must see the inverse-augmented facts of every split so that
    # inverse-phase queries are filtered symmetrically.
    augmented = [quads.with_inverses(dataset.num_relations)
                 for quads in dataset.splits().values()]
    time_filter = TimeAwareFilter(augmented) if filter_setting == "time-aware" else None
    static_filter = StaticFilter(augmented) if filter_setting == "static" else None

    was_training = bool(getattr(model, "training", False))
    model.eval()
    rank_batch = _batch_ranks_vectorized if batched else _batch_ranks_per_query
    accumulator = RankingAccumulator()
    for batch in iter_timestep_batches(dataset, split, context, phases=phases):
        scores = model.predict_on(batch)
        ranks = rank_batch(scores, batch, time_filter, static_filter)
        accumulator.add_ranks(ranks)
        if records is not None:
            for row, (s, r, o) in enumerate(zip(batch.subjects,
                                                batch.relations,
                                                batch.objects)):
                records.append(QueryRecord(
                    subject=int(s), relation=int(r), gold_object=int(o),
                    time=batch.time, phase=batch.phase,
                    rank=float(ranks[row])))
    if was_training:
        model.train()
    else:
        model.eval()
    return accumulator.summary()


def format_metric_row(name: str, metrics: Dict[str, float]) -> str:
    """Render one model's metrics like a row of the paper's tables."""
    return (f"{name:24s} MRR {metrics['mrr']:6.2f}  "
            f"H@1 {metrics['hits@1']:6.2f}  "
            f"H@3 {metrics['hits@3']:6.2f}  "
            f"H@10 {metrics['hits@10']:6.2f}")
