"""LogCL reproduction — Local-Global History-Aware Contrastive Learning
for Temporal Knowledge Graph Reasoning (Chen et al., ICDE 2024).

Quickstart::

    from repro import LogCL, LogCLConfig, Trainer, TrainConfig
    from repro.datasets import load_preset

    dataset = load_preset("tiny")
    model = LogCL(LogCLConfig(dim=32, window=3),
                  dataset.num_entities, dataset.num_relations)
    trainer = Trainer(TrainConfig(epochs=10))
    trainer.fit(model, dataset)
    print(trainer.test(model, dataset))

Package map
-----------
``repro.nn``         from-scratch numpy autodiff + layers + optimizers
``repro.tkg``        temporal KG substrate (facts, snapshots, filters, IO)
``repro.datasets``   synthetic ICEWS/GDELT-style benchmark presets
``repro.graph``      R-GCN / CompGCN / KBGAT message passing
``repro.core``       the LogCL model itself
``repro.baselines``  10 re-implemented comparison systems
``repro.eval``       MRR/Hits@k with time-aware filtering
``repro.training``   offline trainer, online protocol, checkpoints
``repro.serving``    incremental online inference engine + micro-batcher
``repro.obs``        process-wide telemetry: counters, spans, JSONL traces
``repro.robustness`` Gaussian-noise sweeps
"""

from .core import LogCL, LogCLConfig
from .interface import ExtrapolationModel
from .training import (HistoryContext, OnlineConfig, TrainConfig, Trainer,
                       TrainResult, evaluate_online)
from .serving import InferenceEngine, MicroBatcher, ServingStats
from .eval import evaluate, format_metric_row
from .obs import Telemetry, get_telemetry

__version__ = "1.0.0"

__all__ = [
    "LogCL", "LogCLConfig", "ExtrapolationModel",
    "Trainer", "TrainConfig", "TrainResult", "HistoryContext",
    "OnlineConfig", "evaluate_online",
    "InferenceEngine", "MicroBatcher", "ServingStats",
    "evaluate", "format_metric_row",
    "Telemetry", "get_telemetry",
    "__version__",
]
