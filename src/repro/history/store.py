"""The single source of truth for history state (`HistoryStore`).

LogCL's premise is that *one* body of history feeds two encoders: the
local window of the latest ``m`` snapshots (paper §III-C) and the global
query subgraph over all past facts (§III-D).  :class:`HistoryStore` owns
that body once, for every consumer — the trainer's
:class:`repro.training.context.HistoryContext` is a facade over it, the
serving :class:`repro.serving.InferenceEngine` streams into it, and the
evaluation/robustness harnesses read through those two.

A store holds three things, always mutually consistent:

* the **inverse-augmented snapshot sequence** — one
  :class:`repro.tkg.dataset.Snapshot` per non-empty timestamp, each
  carrying both original and inverse edges;
* the growable, monotonic
  :class:`repro.core.subgraph.GlobalHistoryIndex` over the same
  augmented facts;
* for streaming stores, the **raw ingested facts** (original, without
  inverses) so engine state stays replayable.

Two construction modes share all query-time behaviour:

* **dataset-backed** (:meth:`HistoryStore.from_dataset`) — the union of
  all splits (plus optional extra facts) is augmented once up front;
  the store is then immutable except for :meth:`rewind`.
* **streaming** (:meth:`HistoryStore.streaming`) — starts empty;
  :meth:`extend` appends one snapshot at a time in amortized O(new
  facts), augmenting with inverses on ingest.

Both modes produce bitwise-identical ``window_before`` /
``subgraph`` views for the same facts
(``tests/history/test_store.py``,
``tests/integration/test_history_parity.py``).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.subgraph import GlobalHistoryIndex
from ..tkg.dataset import Snapshot, TKGDataset
from ..tkg.quadruples import FACT_DTYPE, QuadrupleSet


class HistoryStore:
    """Snapshot sequence + global index + inverse augmentation.

    Construct through :meth:`from_dataset` or :meth:`streaming`; the bare
    constructor wires the parts together and is not part of the public
    surface.
    """

    def __init__(self, num_relations: int, index: GlobalHistoryIndex,
                 snapshots: Dict[int, Snapshot], streaming: bool):
        self.num_relations = num_relations
        self.index = index
        self._snapshots = snapshots
        self._snap_times: List[int] = sorted(snapshots)
        self._raw_chunks: List[np.ndarray] = []   # streaming mode only
        self._raw_chunk_times: List[int] = []     # aligned with _raw_chunks
        self._streaming = streaming
        # Snapshots present at construction (mapped or dataset-built);
        # the watermark counts upward from here as extend() appends.
        self._base_watermark = len(self._snap_times)
        # Set by repro.data.storefile.open_store for memory-mapped
        # stores: the absolute path of the backing file.  Forked
        # evaluation workers re-open the same file instead of inheriting
        # arrays, so all replicas share one physical copy via the OS
        # page cache (None for purely in-memory stores).
        self.backing_path: Optional[str] = None

    # -- construction ---------------------------------------------------
    @classmethod
    def from_dataset(cls, dataset: TKGDataset,
                     extra_facts: Optional[QuadrupleSet] = None
                     ) -> "HistoryStore":
        """History over the union of all splits (standard extrapolation:
        at evaluation time everything before the query timestamp is known
        ground truth).  ``extra_facts`` extends it (the online protocol
        makes newly revealed test facts part of history this way).
        """
        facts = dataset.all_facts()
        if extra_facts is not None and len(extra_facts):
            facts = facts.concat(extra_facts).unique()
        augmented = facts.with_inverses(dataset.num_relations)
        snapshots = {int(t): Snapshot.from_array(int(t), arr)
                     for t, arr in augmented.group_by_time().items()}
        return cls(dataset.num_relations, GlobalHistoryIndex(augmented),
                   snapshots, streaming=False)

    @classmethod
    def streaming(cls, num_relations: int) -> "HistoryStore":
        """An empty store that grows one snapshot at a time via
        :meth:`extend` (the serving engine's mode)."""
        return cls(num_relations, GlobalHistoryIndex.empty(), {},
                   streaming=True)

    # -- mutation -------------------------------------------------------
    def extend(self, facts: np.ndarray, time: int) -> QuadrupleSet:
        """Append one snapshot of ``(k, 3)`` original facts at ``time``.

        Facts are inverse-augmented on ingest; both the snapshot sequence
        and the global index grow in amortized O(k).  Timestamps must be
        strictly increasing across calls.  Returns the augmented
        quadruples (the engine feeds them to its time-aware filter).
        """
        arr = np.asarray(facts, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != 3:
            raise ValueError(f"expected (k, 3) fact rows, got {arr.shape}")
        time = int(time)
        if self.last_time is not None and time <= self.last_time:
            raise ValueError(f"snapshots must arrive in time order: "
                             f"got t={time} after t={self.last_time}")
        quads = np.concatenate(
            [arr, np.full((len(arr), 1), time, dtype=np.int64)], axis=1)
        augmented = QuadrupleSet(quads).with_inverses(self.num_relations)
        self._snapshots[time] = Snapshot.from_array(time, augmented.array)
        self._snap_times.append(time)   # strictly increasing => sorted
        self.index.extend(augmented.array)
        if self._streaming:
            # Range-validated by the QuadrupleSet construction above.
            self._raw_chunks.append(quads.astype(FACT_DTYPE))
            self._raw_chunk_times.append(time)
        return augmented

    def rewind(self) -> None:
        """Rewind the monotonic index to the stream's start (epoch start).

        O(indexed facts) to drop the incremental structures, instead of
        the full fact-array copy a fresh :class:`GlobalHistoryIndex`
        would pay; asserted behaviourally identical to a rebuild in
        ``tests/history/test_store.py``.
        """
        self.index.rewind()

    # -- watermarks ------------------------------------------------------
    @property
    def watermark(self) -> int:
        """Monotonic store version: the total number of snapshots applied.

        Counts the base snapshots present at construction (mapped file
        sections or the dataset build) plus every :meth:`extend` since.
        Two stores that applied the same snapshot sequence share the
        same watermark, which is what the serving replica set handshakes
        on before answering reads.
        """
        return len(self._snap_times)

    @property
    def base_watermark(self) -> int:
        """The watermark at construction (mapped/dataset snapshots only)."""
        return self._base_watermark

    def delta_since(self, watermark: int) -> List[Tuple[int, np.ndarray]]:
        """The streamed snapshots applied after ``watermark``.

        Returns ``(time, (k, 3) facts)`` pairs in application order —
        the replayable delta a lagging replica (or a restarted engine)
        must apply to catch up from ``watermark`` to :attr:`watermark`.
        Only recorded for streaming stores; asking a non-recording store
        for a non-empty delta raises.
        """
        watermark = int(watermark)
        if not self._base_watermark <= watermark <= self.watermark:
            raise ValueError(
                f"watermark {watermark} outside the recorded range "
                f"[{self._base_watermark}, {self.watermark}]")
        if self.watermark - self._base_watermark != len(self._raw_chunks):
            raise ValueError(
                "store did not record raw deltas (non-streaming mode); "
                "delta_since is only available on streaming stores")
        start = watermark - self._base_watermark
        return [(self._raw_chunk_times[i], self._raw_chunks[i][:, :3])
                for i in range(start, len(self._raw_chunks))]

    # -- query-time views -----------------------------------------------
    @property
    def last_time(self) -> Optional[int]:
        """The latest stored snapshot timestamp (None while empty)."""
        return self._snap_times[-1] if self._snap_times else None

    @property
    def num_snapshots(self) -> int:
        """How many snapshots are stored."""
        return len(self._snap_times)

    def snapshot_times(self) -> List[int]:
        """Stored snapshot timestamps, ascending (a copy)."""
        return list(self._snap_times)

    def window_before(self, query_time: int, window: int) -> List[Snapshot]:
        """The last ``window`` non-empty snapshots before ``query_time``.

        Walks back over *existing* snapshot times, so streams with
        timestamp gaps still fill the full window — the paper's "latest
        m snapshots" (§III-C), not the last m raw timestamps.
        """
        end = bisect_left(self._snap_times, query_time)
        start = max(0, end - window)
        return [self._snapshots[t] for t in self._snap_times[start:end]]

    def index_at(self, query_time: int) -> GlobalHistoryIndex:
        """The global index advanced to ``query_time`` (facts ``< t``)."""
        self.index.advance_to(query_time)
        return self.index

    def subgraph(self, query_time: int, subjects: np.ndarray,
                 relations: np.ndarray
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Merged historical query subgraph (§III-D) for one batch.

        Deduplicated edges measure better than multiplicity-weighted ones
        at bench scale (repeated edges over-smooth the R-GCN
        aggregation); ``subgraph_for_queries`` exposes both.
        """
        index = self.index_at(query_time)
        pairs = list(zip(subjects.tolist(), relations.tolist()))
        return index.subgraph_for_queries(pairs, deduplicate=True)

    # -- persistence ----------------------------------------------------
    def raw_facts(self) -> np.ndarray:
        """All ingested original facts as one ``(n, 4)`` array.

        Only meaningful for streaming stores — the replayable engine
        state (:meth:`repro.serving.InferenceEngine.serving_state`).
        """
        if not self._raw_chunks:
            return np.empty((0, 4), dtype=FACT_DTYPE)
        return np.concatenate(self._raw_chunks, axis=0)
