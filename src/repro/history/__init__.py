"""``repro.history`` — the shared history runtime layer.

One :class:`HistoryStore` (inverse-augmented snapshot sequence + the
monotonic :class:`repro.core.subgraph.GlobalHistoryIndex`, dataset-backed
or streaming) and one :class:`ContextCache` (bounded LRUs over
precomputed encoder contexts and per-batch query subgraphs, instrumented
through :mod:`repro.obs`) back every consumer of history in the repo:
training (:class:`repro.training.context.HistoryContext` is a facade),
evaluation, online learning, the robustness sweeps and the serving
engine.  See ``docs/history.md`` for the store/cache/invalidation
semantics.
"""

from .cache import (DEFAULT_CONTEXT_CAPACITY, DEFAULT_SUBGRAPH_CAPACITY,
                    ContextCache, LRUCache, array_key, subgraph_key)
from .store import HistoryStore

__all__ = [
    "HistoryStore",
    "ContextCache", "LRUCache", "array_key", "subgraph_key",
    "DEFAULT_CONTEXT_CAPACITY", "DEFAULT_SUBGRAPH_CAPACITY",
]
