"""Bounded, instrumented caches over history-derived state.

Two cache families used to live as three divergent implementations —
an unbounded dict on the training ``HistoryContext`` and two hand-rolled
``OrderedDict`` LRUs on the serving engine.  They are now one layer:

* :class:`LRUCache` — a minimal bounded mapping with move-to-front on
  hit and eviction of the least-recently-used entry on overflow;
* :class:`ContextCache` — the history-specific composition every
  consumer shares: one LRU of **precomputed encoder contexts** (keyed by
  query timestamp) and one LRU of **per-batch query subgraphs** (keyed
  by ``(time, array_key(subjects), array_key(relations))`` — the §III-D
  subgraph is seeded from each query's ``(s, r)`` and its historical
  answers, so the forward and inverse phases of one timestamp seed
  *different* subgraphs and may not share one merged edge set).

:func:`array_key` is the shared helper for keying on array contents; it
folds in dtype and length so byte-aliased arrays of different widths
(``int64 [0]`` vs ``int32 [0, 0]``) can never share an entry.

Every get-or-build is instrumented through :mod:`repro.obs`: hits and
misses bump ``context_cache_hits`` / ``context_cache_misses`` /
``subgraph_cache_hits`` / ``subgraph_cache_misses`` counters and each
build runs inside a ``local_state`` / ``subgraph`` span, so the training
and serving paths report cache behaviour through one telemetry schema.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable, Iterator, Optional, Tuple

import numpy as np

from ..obs import NULL_TELEMETRY, Telemetry

# One shared bound for per-batch subgraph caches.  Long multi-split
# evaluations used to grow the training-side dict without limit; the
# serving engine always capped at this size.
DEFAULT_SUBGRAPH_CAPACITY = 512
# Precomputed encoder contexts hold full entity matrices, so the default
# bound is small; serving rarely needs more than a couple of horizons.
DEFAULT_CONTEXT_CAPACITY = 4


class LRUCache:
    """A bounded mapping evicting the least-recently-used entry.

    ``capacity <= 0`` disables storage entirely (every lookup misses),
    which callers use to switch a memo off without branching.
    """

    def __init__(self, capacity: int):
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._entries)

    def get(self, key: Hashable) -> Optional[Any]:
        """The stored value (marked most-recent), or None."""
        if key not in self._entries:
            return None
        self._entries.move_to_end(key)
        return self._entries[key]

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh an entry, evicting least-recent past capacity."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > max(self.capacity, 0):
            self._entries.popitem(last=False)

    def evict_if(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``."""
        stale = [key for key in self._entries if predicate(key)]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()


def array_key(arr: np.ndarray) -> Tuple[str, int, bytes]:
    """A collision-safe hashable key for an index array's contents.

    Raw ``tobytes()`` alone is NOT a safe cache key: the byte string
    carries neither dtype nor element count, so e.g. ``int64 [0]`` and
    ``int32 [0, 0]`` serialize identically (the collision class PR 7
    fixed in ``repro.nn.ops._SCATTER_CACHE``).  Prefixing the dtype
    string and length disambiguates every such pair.  Use this helper —
    not bare ``tobytes()`` — whenever an array's contents become part of
    a cache key.
    """
    arr = np.ascontiguousarray(arr)
    return (arr.dtype.str, arr.shape[0] if arr.ndim else 0, arr.tobytes())


def subgraph_key(query_time: int, subjects: np.ndarray,
                 relations: np.ndarray) -> Tuple:
    """The canonical per-batch subgraph cache key (phase-aware: the query
    arrays are part of the key, not just the timestamp).

    Both query arrays are keyed through :func:`array_key` so that
    callers handing in different index dtypes (the serving engine
    normalizes to ``int32`` fact columns, the training context yields
    ``int64`` ids) can never alias one another's entries.
    """
    return (int(query_time), array_key(subjects), array_key(relations))


class ContextCache:
    """Shared LRU layer over encoder contexts and query subgraphs.

    Parameters
    ----------
    telemetry:
        Hit/miss counters and build spans land here.  Mutable: consumers
        that learn their telemetry late (``evaluate`` receiving one for a
        pre-built context) rebind :attr:`telemetry` in place.
    context_capacity, subgraph_capacity:
        LRU bounds.  The subgraph bound is the one the serving engine
        always enforced; the training context now shares it
        (``tests/history/test_cache.py`` asserts neither cache ever
        exceeds its bound).
    """

    def __init__(self, telemetry: Telemetry = NULL_TELEMETRY,
                 context_capacity: int = DEFAULT_CONTEXT_CAPACITY,
                 subgraph_capacity: int = DEFAULT_SUBGRAPH_CAPACITY):
        self.telemetry = telemetry
        self.contexts = LRUCache(context_capacity)
        self.subgraphs = LRUCache(subgraph_capacity)

    # -- get-or-build ---------------------------------------------------
    def context(self, query_time: int, build: Callable[[], Any]) -> Any:
        """The precomputed encoder context for ``query_time``.

        A miss runs ``build`` inside a ``local_state`` span (flat, not
        nested under enclosing spans — the stage names line up with the
        serving pipeline's regardless of caller).
        """
        cached = self.contexts.get(query_time)
        if cached is not None:
            self.telemetry.incr("context_cache_hits")
            return cached
        self.telemetry.incr("context_cache_misses")
        with self.telemetry.span("local_state", nested=False):
            value = build()
        self.contexts.put(query_time, value)
        return value

    def subgraph(self, query_time: int, subjects: np.ndarray,
                 relations: np.ndarray, build: Callable[[], Any]) -> Any:
        """The merged historical subgraph for one query batch."""
        key = subgraph_key(query_time, subjects, relations)
        cached = self.subgraphs.get(key)
        if cached is not None:
            self.telemetry.incr("subgraph_cache_hits")
            return cached
        self.telemetry.incr("subgraph_cache_misses")
        with self.telemetry.span("subgraph", nested=False):
            value = build()
        self.subgraphs.put(key, value)
        return value

    # -- invalidation ---------------------------------------------------
    def invalidate_after(self, time: int) -> None:
        """Drop entries whose query time exceeds ``time``.

        Called on snapshot ingestion: anything cached for a query time
        beyond the new snapshot now has a stale history; entries at or
        before it are unaffected.
        """
        self.contexts.evict_if(lambda key: key > time)
        self.subgraphs.evict_if(lambda key: key[0] > time)

    def clear(self) -> None:
        """Drop both layers (model changed; nothing remains valid)."""
        self.contexts.clear()
        self.subgraphs.clear()
