"""Checkpointing model weights to .npz archives."""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

import numpy as np

from ..nn import Module


def save_checkpoint(model: Module, path: str,
                    metadata: Optional[Dict[str, Any]] = None) -> None:
    """Persist a model's parameters (and optional JSON metadata) to disk.

    The archive stores each named parameter as an array plus a reserved
    ``__metadata__`` JSON blob, so checkpoints are portable and inspectable
    with plain numpy.
    """
    state = model.state_dict()
    if "__metadata__" in state:
        raise ValueError("parameter name __metadata__ is reserved")
    payload = dict(state)
    payload["__metadata__"] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez(path if path.endswith(".npz") else path + ".npz", **payload)


def load_checkpoint(model: Module, path: str) -> Dict[str, Any]:
    """Load parameters into ``model`` in place; returns the metadata."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        metadata = json.loads(bytes(archive["__metadata__"]).decode("utf-8"))
        state = {name: archive[name] for name in archive.files
                 if name != "__metadata__"}
    model.load_state_dict(state)
    return metadata
