"""Checkpointing model weights (and serving-engine state) to .npz archives."""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

import numpy as np

from ..nn import Module


def save_checkpoint(model: Module, path: str,
                    metadata: Optional[Dict[str, Any]] = None) -> None:
    """Persist a model's parameters (and optional JSON metadata) to disk.

    The archive stores each named parameter as an array plus a reserved
    ``__metadata__`` JSON blob, so checkpoints are portable and inspectable
    with plain numpy.
    """
    state = model.state_dict()
    if "__metadata__" in state:
        raise ValueError("parameter name __metadata__ is reserved")
    payload = dict(state)
    payload["__metadata__"] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez(path if path.endswith(".npz") else path + ".npz", **payload)


def load_checkpoint(model: Module, path: str) -> Dict[str, Any]:
    """Load parameters into ``model`` in place; returns the metadata."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        metadata = json.loads(bytes(archive["__metadata__"]).decode("utf-8"))
        state = {name: archive[name] for name in archive.files
                 if name != "__metadata__"}
    model.load_state_dict(state)
    return metadata


# -- serving-engine state --------------------------------------------------

_ENGINE_KEYS = ("__metadata__", "__serving_facts__", "__serving_meta__",
                "__serving_store__", "__serving_calibration__")


def save_engine_state(engine, path: str,
                      metadata: Optional[Dict[str, Any]] = None) -> None:
    """Persist a serving engine (model weights + ingested history).

    One archive restarts the whole service: the model's parameters are
    stored exactly as :func:`save_checkpoint` would, plus the engine's
    replayable history under reserved ``__serving_*`` keys.  For an
    engine backed by a store file the archive records the backing path
    (``__serving_store__``) and **only the post-adoption delta facts**
    — restore re-maps the file and replays just the delta, never a
    duplicated copy of the mapped history.
    """
    state = engine.model.state_dict()
    for reserved in _ENGINE_KEYS:
        if reserved in state:
            raise ValueError(f"parameter name {reserved} is reserved")
    serving = engine.serving_state()
    payload = dict(state)
    payload["__serving_facts__"] = serving["facts"]
    payload["__serving_meta__"] = serving["meta"]
    if "store_path" in serving:
        payload["__serving_store__"] = serving["store_path"]
    if "calibration" in serving:
        # The score calibrator's rolling reference window: restart must
        # flag anomalies against the same threshold as the live engine.
        payload["__serving_calibration__"] = serving["calibration"]
    payload["__metadata__"] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez(path if path.endswith(".npz") else path + ".npz", **payload)


def load_engine_state(engine, path: str) -> Dict[str, Any]:
    """Restore model weights and ingested history into ``engine``.

    The engine must be built for the same model architecture and
    vocabulary sizes; returns the archive's metadata.
    """
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        if "__serving_facts__" not in archive.files:
            raise ValueError(f"{path} is a plain model checkpoint, not an "
                             "engine state (use load_checkpoint)")
        metadata = json.loads(bytes(archive["__metadata__"]).decode("utf-8"))
        params = {name: archive[name] for name in archive.files
                  if name not in _ENGINE_KEYS}
        serving = {"facts": archive["__serving_facts__"],
                   "meta": archive["__serving_meta__"]}
        if "__serving_store__" in archive.files:
            serving["store_path"] = archive["__serving_store__"]
        if "__serving_calibration__" in archive.files:
            serving["calibration"] = archive["__serving_calibration__"]
    engine.model.load_state_dict(params)
    engine.model.eval()
    engine.restore_state(serving)
    return metadata
