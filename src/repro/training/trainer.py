"""Offline training loop (the paper's Algorithm 1 driver).

One epoch walks the training split's timestamps in order; each timestamp
contributes two optimization steps (forward-phase queries, then
inverse-phase queries — §III-F's two-phase propagation).  Validation MRR
drives early stopping and best-checkpoint selection.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..eval.protocol import evaluate
from ..interface import ExtrapolationModel
from ..nn import Adam, clip_grad_norm
from ..obs import NULL_TELEMETRY, ParamDrift, Telemetry
from ..perf import FLAGS
from ..tkg.dataset import TKGDataset
from .context import (PHASES, HistoryContext, iter_joint_timestep_batches,
                      iter_timestep_batches)


@dataclass(frozen=True)
class TrainConfig:
    """Knobs of the offline trainer.

    Defaults mirror the paper's setting (Adam, lr=0.001, gradient norm
    clipped at 1.0) with epoch counts scaled to the synthetic presets.
    """

    epochs: int = 12
    lr: float = 1e-3
    grad_clip: float = 1.0
    window: int = 3
    phases: Sequence[str] = PHASES
    patience: int = 5            # early stop after this many non-improving evals
    eval_every: int = 2          # validate every N epochs
    verbose: bool = False
    min_history: int = 1
    joint_phases: bool = True    # one batch per timestamp holding both
                                 # phases (the original LogCL/RE-GCN
                                 # schedule); halves encoder work per
                                 # epoch.  Only applies when ``phases``
                                 # is the full two-phase set — ablation
                                 # configs keep the split iterator.
    workers: int = 1             # forked shard workers (repro.parallel)
    grad_accum: Optional[int] = None  # batches per optimizer step (sharded
                                      # mode; defaults to ``workers``)


@dataclass
class TrainResult:
    """Training artifacts: loss curve, validation trace, best state."""

    train_losses: List[float] = field(default_factory=list)
    valid_mrrs: List[float] = field(default_factory=list)
    best_valid_mrr: float = -1.0
    best_state: Optional[Dict[str, np.ndarray]] = None
    epochs_run: int = 0
    seconds: float = 0.0


class Trainer:
    """Fits any :class:`ExtrapolationModel` on a :class:`TKGDataset`."""

    def __init__(self, config: TrainConfig = TrainConfig()):
        self.config = config

    def _train_batches(self, dataset: TKGDataset, context: HistoryContext):
        """The epoch's training batches under the configured schedule."""
        cfg = self.config
        if cfg.joint_phases and set(cfg.phases) == set(PHASES):
            return iter_joint_timestep_batches(dataset, "train", context,
                                               min_history=cfg.min_history)
        return iter_timestep_batches(dataset, "train", context,
                                     phases=cfg.phases,
                                     min_history=cfg.min_history)

    def fit(self, model: ExtrapolationModel, dataset: TKGDataset,
            context: Optional[HistoryContext] = None,
            telemetry: Telemetry = NULL_TELEMETRY) -> TrainResult:
        """Train ``model``; optionally record telemetry.

        When a :class:`repro.obs.Telemetry` is given, each epoch is
        wrapped in an ``epoch`` span with nested ``epoch/train`` (and
        per-step ``epoch/train/step``) and ``epoch/eval`` spans, gradient
        norms are observed pre/post clip, and the global parameter norm
        plus its per-epoch drift land in the ``param_norm`` /
        ``param_norm_drift`` series.  Attach a JSONL sink beforehand
        (:meth:`repro.obs.Telemetry.attach_trace`) to stream every span
        as a trace event (``repro.cli train --trace``).

        With ``config.workers > 1`` (or an explicit ``grad_accum``) the
        epoch loop switches to the sharded gradient-accumulation mode of
        :mod:`repro.parallel.training`: groups of ``grad_accum`` batches
        are gradient-evaluated across forked workers against the
        group-start weights, and the parent applies one reduced Adam step
        per group.  ``workers=1`` vs ``workers=N`` is bitwise-identical
        for any fixed ``grad_accum``; ``grad_accum=1`` reproduces the
        serial trainer's schedule (and, for models without training-time
        stochasticity, its exact numerics — see
        :mod:`repro.parallel.training` for the full contract).
        """
        cfg = self.config
        if context is None:
            context = HistoryContext(dataset, window=cfg.window,
                                     telemetry=telemetry)
        elif telemetry is not NULL_TELEMETRY:
            context.bind_telemetry(telemetry)
        if cfg.workers != 1 or cfg.grad_accum is not None:
            return self._fit_sharded(model, dataset, context, telemetry)
        optimizer = Adam(model.parameters(), lr=cfg.lr)
        result = TrainResult()
        started = time.perf_counter()
        stale_evals = 0
        drift = ParamDrift(telemetry)
        # The parameter set is static across a fit; walking the module
        # tree once here keeps the per-step grad-clip off the recursive
        # ``named_parameters`` path (~0.5ms/step at benchmark scale).
        # With the in-place-optimizer lever off the walk stays per-step,
        # matching the pre-pass trainer the perf benchmark measures.
        param_list = model.parameters()

        for epoch in range(cfg.epochs):
            with telemetry.span("epoch"):
                model.train()
                context.reset()
                epoch_losses: List[float] = []
                with telemetry.span("train"):
                    for batch in self._train_batches(dataset, context):
                        with telemetry.span("step"):
                            optimizer.zero_grad()
                            loss = model.loss_on(batch)
                            loss.backward()
                            clip_grad_norm(param_list if FLAGS.inplace_optim
                                           else model.parameters(),
                                           cfg.grad_clip,
                                           telemetry=telemetry)
                            optimizer.step()
                        epoch_losses.append(float(loss.data))
                        telemetry.incr("train_steps")
                mean_loss = (float(np.mean(epoch_losses))
                             if epoch_losses else 0.0)
                result.train_losses.append(mean_loss)
                result.epochs_run = epoch + 1
                telemetry.incr("epochs")
                telemetry.observe("epoch_loss", mean_loss)
                drift.update(model.parameters())

                run_eval = ((epoch + 1) % cfg.eval_every == 0
                            or epoch == cfg.epochs - 1)
                if run_eval:
                    with telemetry.span("eval"):
                        metrics = evaluate(model, dataset, "valid",
                                           context=context, phases=cfg.phases,
                                           telemetry=telemetry)
                    result.valid_mrrs.append(metrics["mrr"])
                    improved = metrics["mrr"] > result.best_valid_mrr
                    if improved:
                        result.best_valid_mrr = metrics["mrr"]
                        result.best_state = model.state_dict()
                        stale_evals = 0
                    else:
                        stale_evals += 1
                    if cfg.verbose:
                        print(f"epoch {epoch + 1:3d}  loss {mean_loss:8.4f}  "
                              f"valid MRR {metrics['mrr']:6.2f}"
                              f"{'  *' if improved else ''}")
                    if stale_evals >= cfg.patience:
                        break
                elif cfg.verbose:
                    print(f"epoch {epoch + 1:3d}  loss {mean_loss:8.4f}")

        if result.best_state is not None:
            model.load_state_dict(result.best_state)
        result.seconds = time.perf_counter() - started
        return result

    def _fit_sharded(self, model: ExtrapolationModel, dataset: TKGDataset,
                     context: HistoryContext,
                     telemetry: Telemetry) -> TrainResult:
        """Sharded gradient-accumulation epoch loop (workers/grad_accum).

        One optimizer step per group of ``grad_accum`` batches: workers
        compute per-batch gradients against the group-start weights, the
        parent reduces them in batch order, clips, and steps — see
        :mod:`repro.parallel.training` for the determinism contract.
        """
        from ..parallel.training import (GradientShardRunner,
                                         accumulation_groups)
        cfg = self.config
        grad_accum = (cfg.grad_accum if cfg.grad_accum is not None
                      else max(1, cfg.workers))
        optimizer = Adam(model.parameters(), lr=cfg.lr)
        result = TrainResult()
        started = time.perf_counter()
        stale_evals = 0
        drift = ParamDrift(telemetry)
        context.reset()
        batches = list(self._train_batches(dataset, context))
        groups = accumulation_groups(len(batches), grad_accum)
        named = dict(model.named_parameters())

        with GradientShardRunner(model, context, batches, cfg.workers,
                                 telemetry=telemetry) as runner:
            for epoch in range(cfg.epochs):
                with telemetry.span("epoch"):
                    model.train()
                    context.reset()
                    epoch_losses: List[float] = []
                    with telemetry.span("train"):
                        for group in groups:
                            losses, mean_grads = runner.group_gradients(
                                epoch, group)
                            optimizer.zero_grad()
                            for name, grad in mean_grads.items():
                                named[name].grad = grad
                            clip_grad_norm(model.parameters(), cfg.grad_clip,
                                           telemetry=telemetry)
                            optimizer.step()
                            epoch_losses.extend(losses)
                    mean_loss = (float(np.mean(epoch_losses))
                                 if epoch_losses else 0.0)
                    result.train_losses.append(mean_loss)
                    result.epochs_run = epoch + 1
                    telemetry.incr("epochs")
                    telemetry.observe("epoch_loss", mean_loss)
                    drift.update(model.parameters())

                    run_eval = ((epoch + 1) % cfg.eval_every == 0
                                or epoch == cfg.epochs - 1)
                    if run_eval:
                        with telemetry.span("eval"):
                            metrics = evaluate(model, dataset, "valid",
                                               context=context,
                                               phases=cfg.phases,
                                               workers=cfg.workers,
                                               telemetry=telemetry)
                        result.valid_mrrs.append(metrics["mrr"])
                        improved = metrics["mrr"] > result.best_valid_mrr
                        if improved:
                            result.best_valid_mrr = metrics["mrr"]
                            result.best_state = model.state_dict()
                            stale_evals = 0
                        else:
                            stale_evals += 1
                        if cfg.verbose:
                            print(f"epoch {epoch + 1:3d}  "
                                  f"loss {mean_loss:8.4f}  "
                                  f"valid MRR {metrics['mrr']:6.2f}"
                                  f"{'  *' if improved else ''}")
                        if stale_evals >= cfg.patience:
                            break
                    elif cfg.verbose:
                        print(f"epoch {epoch + 1:3d}  loss {mean_loss:8.4f}")

        if result.best_state is not None:
            model.load_state_dict(result.best_state)
        result.seconds = time.perf_counter() - started
        return result

    def test(self, model: ExtrapolationModel, dataset: TKGDataset,
             context: Optional[HistoryContext] = None,
             telemetry: Telemetry = NULL_TELEMETRY) -> Dict[str, float]:
        """Evaluate on the test split with the paper's protocol."""
        with telemetry.span("test"):
            return evaluate(model, dataset, "test", context=context,
                            window=self.config.window, phases=self.config.phases,
                            telemetry=telemetry)


def export_history(result: TrainResult, path: str) -> None:
    """Write a TrainResult's curves to JSON for external plotting.

    The archive holds the per-epoch training loss, the validation MRR
    trace (one entry per evaluation), the best validation MRR and the
    wall-clock duration — everything needed to reproduce a learning
    curve without re-running training.
    """
    import json
    import os
    payload = {
        "train_losses": result.train_losses,
        "valid_mrrs": result.valid_mrrs,
        "best_valid_mrr": result.best_valid_mrr,
        "epochs_run": result.epochs_run,
        "seconds": result.seconds,
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


def load_history(path: str) -> TrainResult:
    """Load curves exported by :func:`export_history` (no best_state)."""
    import json
    with open(path) as handle:
        payload = json.load(handle)
    return TrainResult(
        train_losses=payload["train_losses"],
        valid_mrrs=payload["valid_mrrs"],
        best_valid_mrr=payload["best_valid_mrr"],
        epochs_run=payload["epochs_run"],
        seconds=payload["seconds"])
