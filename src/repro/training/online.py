"""Online-learning evaluation (paper §IV-H, Fig. 10).

Under the online setting the test period is walked timestamp by
timestamp: the model first answers the queries at ``t`` (scored exactly
like the offline protocol), and only *then* fine-tunes on the revealed
facts of ``t`` before moving to ``t+1``.  Historical facts in the test
period thereby update the model, which is why online results dominate
offline ones for every model in Fig. 10.

Ranking goes through the same batched kernel as the offline protocol
(:func:`repro.eval.ranking.batch_ranks_vectorized`); the legacy
per-query path is kept behind ``batched=False`` and the parity tests
assert both produce bitwise-identical metric rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..eval.metrics import RankingAccumulator
from ..eval.ranking import batch_ranks_per_query, batch_ranks_vectorized
from ..interface import ExtrapolationModel
from ..nn import Adam, clip_grad_norm
from ..obs import NULL_TELEMETRY, Telemetry
from ..tkg.dataset import TKGDataset
from ..tkg.filtering import TimeAwareFilter
from .context import PHASES, HistoryContext, iter_timestep_batches


@dataclass(frozen=True)
class OnlineConfig:
    """Knobs of the online pass."""

    lr: float = 1e-4             # gentler than offline: we adapt, not retrain
    steps_per_timestamp: int = 1
    grad_clip: float = 1.0
    window: int = 3
    phases: Sequence[str] = PHASES


def evaluate_online(model: ExtrapolationModel, dataset: TKGDataset,
                    config: OnlineConfig = OnlineConfig(),
                    batched: bool = True,
                    workers: int = 1,
                    telemetry: Telemetry = NULL_TELEMETRY
                    ) -> Dict[str, float]:
    """Walk the test split online: predict at t, then adapt on t's facts.

    Returns the same metric row as :func:`repro.eval.evaluate`, so online
    and offline numbers are directly comparable (Fig. 10).  The caller's
    train/eval mode is restored on return.  ``batched=False`` selects the
    legacy per-query ranking path (bitwise-identical to the default
    batched kernel; kept for the parity tests).  ``workers`` shards each
    timestamp's predict phase across forked processes
    (:mod:`repro.parallel`); adaptation stays serial in the parent, so
    metric rows are bitwise-identical for every worker count.  A
    ``telemetry`` instance records ``context_build`` / ``predict`` /
    ``adapt`` spans plus ``queries_evaluated`` and ``adapt_steps``
    counters.
    """
    with telemetry.span("context_build"):
        context = HistoryContext(dataset, window=config.window,
                                 telemetry=telemetry)
        context.reset()
        augmented = [quads.with_inverses(dataset.num_relations)
                     for quads in dataset.splits().values()]
        time_filter = TimeAwareFilter(augmented)
    optimizer = Adam(model.parameters(), lr=config.lr)
    accumulator = RankingAccumulator()
    rank_batch = batch_ranks_vectorized if batched else batch_ranks_per_query
    was_training = bool(getattr(model, "training", False))

    # Group the per-phase batches by timestamp so we score *both* phases
    # before any adaptation step sees the timestamp's facts.
    batches = list(iter_timestep_batches(dataset, "test", context,
                                         phases=config.phases))
    by_time: Dict[int, list] = {}
    for batch in batches:
        by_time.setdefault(batch.time, []).append(batch)

    runner = None
    if workers != 1:
        # Lazy import: repro.parallel is an execution detail of this
        # protocol, pulled in only when sharding is requested.
        from ..parallel.evaluation import OnlineShardRunner
        runner = OnlineShardRunner(model, batches, time_filter,
                                   batched=batched, workers=workers)
    try:
        for t in sorted(by_time):
            group = by_time[t]
            # 1. predict (eval mode, filtered ranking)
            model.eval()
            if runner is not None:
                for ranks in runner.predict_group(group, telemetry=telemetry):
                    accumulator.add_ranks(ranks)
            else:
                with telemetry.span("predict"):
                    for batch in group:
                        scores = model.predict_on(batch)
                        accumulator.add_ranks(
                            rank_batch(scores, batch, time_filter))
                        telemetry.incr("queries_evaluated", len(batch))
            # 2. adapt on the now-revealed facts of t
            model.train()
            with telemetry.span("adapt"):
                for _ in range(config.steps_per_timestamp):
                    for batch in group:
                        optimizer.zero_grad()
                        loss = model.loss_on(batch)
                        loss.backward()
                        clip_grad_norm(model.parameters(), config.grad_clip,
                                       telemetry=telemetry)
                        optimizer.step()
                        telemetry.incr("adapt_steps")
    finally:
        if runner is not None:
            runner.close()
            context.bind_telemetry(telemetry)
    if was_training:
        model.train()
    else:
        model.eval()
    return accumulator.summary()
