"""Online-learning evaluation (paper §IV-H, Fig. 10).

Under the online setting the test period is walked timestamp by
timestamp: the model first answers the queries at ``t`` (scored exactly
like the offline protocol), and only *then* fine-tunes on the revealed
facts of ``t`` before moving to ``t+1``.  Historical facts in the test
period thereby update the model, which is why online results dominate
offline ones for every model in Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..eval.metrics import RankingAccumulator, rank_of_target
from ..interface import ExtrapolationModel
from ..nn import Adam, clip_grad_norm
from ..tkg.dataset import TKGDataset
from ..tkg.filtering import TimeAwareFilter
from .context import PHASES, HistoryContext, iter_timestep_batches


@dataclass(frozen=True)
class OnlineConfig:
    """Knobs of the online pass."""

    lr: float = 1e-4             # gentler than offline: we adapt, not retrain
    steps_per_timestamp: int = 1
    grad_clip: float = 1.0
    window: int = 3
    phases: Sequence[str] = PHASES


def evaluate_online(model: ExtrapolationModel, dataset: TKGDataset,
                    config: OnlineConfig = OnlineConfig()) -> Dict[str, float]:
    """Walk the test split online: predict at t, then adapt on t's facts.

    Returns the same metric row as :func:`repro.eval.evaluate`, so online
    and offline numbers are directly comparable (Fig. 10).
    """
    context = HistoryContext(dataset, window=config.window)
    context.reset()
    optimizer = Adam(model.parameters(), lr=config.lr)
    augmented = [quads.with_inverses(dataset.num_relations)
                 for quads in dataset.splits().values()]
    time_filter = TimeAwareFilter(augmented)
    accumulator = RankingAccumulator()

    # Group the per-phase batches by timestamp so we score *both* phases
    # before any adaptation step sees the timestamp's facts.
    batches = list(iter_timestep_batches(dataset, "test", context,
                                         phases=config.phases))
    by_time: Dict[int, list] = {}
    for batch in batches:
        by_time.setdefault(batch.time, []).append(batch)

    for t in sorted(by_time):
        group = by_time[t]
        # 1. predict (eval mode, filtered ranking)
        model.eval()
        for batch in group:
            scores = model.predict_on(batch)
            for row, (s, r, o) in enumerate(zip(batch.subjects,
                                                batch.relations,
                                                batch.objects)):
                filtered = time_filter.filter_scores(
                    scores[row], int(s), int(r), batch.time, int(o))
                accumulator.add(rank_of_target(filtered, int(o)))
        # 2. adapt on the now-revealed facts of t
        model.train()
        for _ in range(config.steps_per_timestamp):
            for batch in group:
                optimizer.zero_grad()
                loss = model.loss_on(batch)
                loss.backward()
                clip_grad_norm(model.parameters(), config.grad_clip)
                optimizer.step()
    model.eval()
    return accumulator.summary()
