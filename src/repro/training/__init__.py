"""``repro.training`` — offline trainer, online protocol, batching."""

from .checkpoint import (load_checkpoint, load_engine_state, save_checkpoint,
                         save_engine_state)
from .context import (PHASES, HistoryContext, TimestepBatch,
                      iter_joint_timestep_batches, iter_timestep_batches)
from .online import OnlineConfig, evaluate_online
from .trainer import (TrainConfig, Trainer, TrainResult,
                      export_history, load_history)

__all__ = [
    "HistoryContext", "TimestepBatch", "iter_timestep_batches",
    "iter_joint_timestep_batches", "PHASES",
    "Trainer", "TrainConfig", "TrainResult",
    "export_history", "load_history",
    "OnlineConfig", "evaluate_online",
    "save_checkpoint", "load_checkpoint",
    "save_engine_state", "load_engine_state",
]
