"""Timestamp batching and shared history state for training/evaluation.

The paper trains with "batch size ... the number of quadruples in each
timestamp": every optimization step sees all queries of one snapshot.
:func:`iter_timestep_batches` yields those batches in time order, applying
the two-phase forward propagation of §III-F — the original queries first,
then the inverse queries — so the entity-aware attention never perceives
the answers of the phase it is scoring (the data-leakage guard the paper
motivates).

:class:`HistoryContext` is a thin facade over the shared
:mod:`repro.history` runtime layer: a dataset-backed
:class:`repro.history.HistoryStore` holds the state both encoders read
(the inverse-augmented snapshot sequence for the local window, the
incremental :class:`repro.core.subgraph.GlobalHistoryIndex` for the
global query subgraphs), and a bounded
:class:`repro.history.ContextCache` memoizes per-batch subgraphs.  The
serving engine is a client of the same two classes, which is what keeps
offline and online window/invalidation semantics identical
(``tests/integration/test_history_parity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.subgraph import GlobalHistoryIndex
from ..history import DEFAULT_SUBGRAPH_CAPACITY, ContextCache, HistoryStore
from ..obs import NULL_TELEMETRY, Telemetry
from ..tkg.dataset import Snapshot, TKGDataset
from ..tkg.quadruples import QuadrupleSet

PHASES = ("forward", "inverse")


class HistoryContext:
    """Shared history state for one pass over a dataset in time order.

    Parameters
    ----------
    dataset:
        The benchmark; history is drawn from the union of all splits (the
        standard extrapolation protocol — at evaluation time everything
        before the query timestamp is known ground truth).
    window:
        Local window length ``m``.
    extra_facts:
        Optional additional facts (used by the online-learning protocol to
        make newly revealed test facts part of history).
    telemetry:
        Receives the shared cache's hit/miss counters and build spans
        (``subgraph_cache_hits`` etc.); defaults to the inert null
        telemetry.  Consumers that learn their telemetry late rebind it
        through :meth:`bind_telemetry`.
    subgraph_cache_size:
        LRU bound of the per-batch subgraph cache — the same bound the
        serving engine enforces (the cache was unbounded here once; long
        multi-split evaluations grew memory without limit).
    store:
        Optional prebuilt :class:`repro.history.HistoryStore` to adopt
        instead of building one from the dataset — the out-of-core path:
        ``HistoryContext(ds, window, store=repro.data.open_store(path))``
        evaluates against the memory-mapped backing file.  The adopted
        store must hold the same augmented history the default
        construction would build (``extra_facts`` is rejected alongside
        it — bake extras into the store at write time).
    """

    def __init__(self, dataset: TKGDataset, window: int,
                 extra_facts: Optional[QuadrupleSet] = None,
                 telemetry: Telemetry = NULL_TELEMETRY,
                 subgraph_cache_size: int = DEFAULT_SUBGRAPH_CAPACITY,
                 store: Optional[HistoryStore] = None):
        self.dataset = dataset
        self.window = window
        if store is not None:
            if extra_facts is not None and len(extra_facts):
                raise ValueError(
                    "pass either extra_facts or a prebuilt store, not both "
                    "(write the extras into the store file instead)")
            self.store = store
        else:
            self.store = HistoryStore.from_dataset(dataset,
                                                   extra_facts=extra_facts)
        self.cache = ContextCache(telemetry=telemetry,
                                  subgraph_capacity=subgraph_cache_size)
        self.reset()

    def adopt_store(self, store: HistoryStore) -> None:
        """Swap in a different backing store (fork-worker mmap handoff).

        Sharded evaluation workers call this with a freshly re-opened
        memory-mapped store so every worker reads the backing file
        through the shared page cache instead of a copy-on-write
        inheritance of the parent's arrays.  The caches are dropped —
        cached subgraphs hold row views into the old store's buffers.
        """
        self.store = store
        self.cache.subgraphs.clear()
        self.reset()

    def bind_telemetry(self, telemetry: Telemetry) -> None:
        """Point the cache's counters/spans at ``telemetry`` (idempotent)."""
        self.cache.telemetry = telemetry

    @property
    def global_index(self) -> GlobalHistoryIndex:
        """The store's monotonic global index (shared, never copied)."""
        return self.store.index

    @property
    def num_entities(self) -> int:
        return self.dataset.num_entities

    def reset(self) -> None:
        """Rewind the monotonic global index (call at each epoch start).

        Delegates to :meth:`repro.history.HistoryStore.rewind` — the
        index keeps its fact buffer and only drops its advance state, so
        an epoch start no longer pays a full index rebuild.  The subgraph
        cache survives the reset: a dataset-backed store's fact buffer is
        immutable, so a batch's merged subgraph is a pure function of its
        ``(time, subjects, relations)`` key and repeated passes (epochs,
        noise-sweep sigmas) hit instead of rebuilding.  Cached *encoder*
        contexts depend on model weights and are dropped.
        """
        self.store.rewind()
        self.cache.contexts.clear()

    # ------------------------------------------------------------------
    def window_before(self, query_time: int) -> List[Snapshot]:
        """The last ``window`` non-empty snapshots before ``query_time``."""
        return self.store.window_before(query_time, self.window)

    def global_edges(self, query_time: int, subjects: np.ndarray,
                     relations: np.ndarray
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Merged historical query subgraph for a batch (cached per batch).

        The cache key includes the query pairs, not just the timestamp:
        the §III-D subgraph is seeded from each query's ``(s, r)`` and its
        historical answers, so the forward and inverse phases of one
        timestamp seed *different* subgraphs and may not share one merged
        edge set.  Identical repeated batches still hit the cache.
        """
        return self.cache.subgraph(
            query_time, subjects, relations,
            lambda: self.store.subgraph(query_time, subjects, relations))

    def history_index_at(self, query_time: int) -> GlobalHistoryIndex:
        """The global index advanced to ``query_time``."""
        return self.store.index_at(query_time)


@dataclass
class TimestepBatch:
    """All queries of one timestamp in one propagation phase.

    ``subjects[i]``, ``relations[i]`` form query *i*; ``objects[i]`` is its
    gold answer (``None`` for label-free serving batches).  ``phase`` is
    ``"forward"`` for original facts, ``"inverse"`` for the reversed ones
    (relation ids already offset) and ``"serving"`` for engine-built
    batches.  Lazy accessors pull the local window and global subgraph
    from ``context`` — any provider of the shared history surface
    (``window_before`` / ``global_edges`` / ``history_index_at`` /
    ``num_entities``): a training :class:`HistoryContext` or a serving
    :class:`repro.serving.InferenceEngine`.
    """

    time: int
    subjects: np.ndarray
    relations: np.ndarray
    objects: Optional[np.ndarray]
    phase: str
    context: "HistoryContext"

    def __len__(self) -> int:
        return len(self.subjects)

    @property
    def snapshots(self) -> List[Snapshot]:
        return self.context.window_before(self.time)

    @property
    def global_edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self.context.global_edges(self.time, self.subjects,
                                         self.relations)

    @property
    def history_index(self) -> GlobalHistoryIndex:
        """The shared global history index, advanced to this timestamp.

        Copy-mechanism baselines (CyGNet, TiRGN, CENET) read historical
        answer vocabularies from here without materializing a subgraph.
        """
        return self.context.history_index_at(self.time)

    @property
    def num_entities(self) -> int:
        return self.context.num_entities


def iter_timestep_batches(dataset: TKGDataset, split: str,
                          context: HistoryContext,
                          phases: Sequence[str] = PHASES,
                          min_history: int = 1) -> Iterator[TimestepBatch]:
    """Yield per-timestamp query batches of ``split`` in time order.

    ``phases`` selects the two-phase propagation halves (Table VII's
    LogCL-FP uses ``("forward",)``, LogCL-SP uses ``("inverse",)``).
    Timestamps earlier than ``min_history`` are skipped — there is no
    history to condition on.
    """
    unknown = set(phases) - set(PHASES)
    if unknown:
        raise ValueError(f"unknown phases {sorted(unknown)}; valid: {PHASES}")
    quads = dataset.splits()[split]
    num_rel = dataset.num_relations
    for t, facts in sorted(quads.group_by_time().items()):
        if t < min_history:
            continue
        if "forward" in phases:
            yield TimestepBatch(
                time=int(t), subjects=facts[:, 0].copy(),
                relations=facts[:, 1].copy(), objects=facts[:, 2].copy(),
                phase="forward", context=context)
        if "inverse" in phases:
            yield TimestepBatch(
                time=int(t), subjects=facts[:, 2].copy(),
                relations=facts[:, 1] + num_rel, objects=facts[:, 0].copy(),
                phase="inverse", context=context)


def iter_joint_timestep_batches(dataset: TKGDataset, split: str,
                                context: HistoryContext,
                                min_history: int = 1
                                ) -> Iterator[TimestepBatch]:
    """Yield one batch per timestamp holding both propagation phases.

    The original LogCL/RE-GCN training loop scores a timestamp's facts
    and their inverses as *one* batch with one optimizer step; the
    two-phase iterator above splits them for ablations and evaluation.
    Joint batches halve the per-timestamp encoder work during training
    (one window walk, one global subgraph — built for the union of both
    phases' query entities — and one backward pass instead of two).
    Evaluation keeps the two-phase iterator: metric rows and per-phase
    query records must not depend on the training batching.
    """
    quads = dataset.splits()[split]
    num_rel = dataset.num_relations
    for t, facts in sorted(quads.group_by_time().items()):
        if t < min_history:
            continue
        yield TimestepBatch(
            time=int(t),
            subjects=np.concatenate([facts[:, 0], facts[:, 2]]),
            relations=np.concatenate([facts[:, 1], facts[:, 1] + num_rel]),
            objects=np.concatenate([facts[:, 2], facts[:, 0]]),
            phase="joint", context=context)
