"""Timestamp batching and shared history state for training/evaluation.

The paper trains with "batch size ... the number of quadruples in each
timestamp": every optimization step sees all queries of one snapshot.
:func:`iter_timestep_batches` yields those batches in time order, applying
the two-phase forward propagation of §III-F — the original queries first,
then the inverse queries — so the entity-aware attention never perceives
the answers of the phase it is scoring (the data-leakage guard the paper
motivates).

:class:`HistoryContext` owns the state both encoders read: the
inverse-augmented snapshot sequence for the local window, and the
incremental :class:`repro.core.subgraph.GlobalHistoryIndex` for the global
query subgraphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.subgraph import GlobalHistoryIndex
from ..tkg.dataset import Snapshot, TKGDataset
from ..tkg.quadruples import QuadrupleSet

PHASES = ("forward", "inverse")


class HistoryContext:
    """Shared history state for one pass over a dataset in time order.

    Parameters
    ----------
    dataset:
        The benchmark; history is drawn from the union of all splits (the
        standard extrapolation protocol — at evaluation time everything
        before the query timestamp is known ground truth).
    window:
        Local window length ``m``.
    extra_facts:
        Optional additional facts (used by the online-learning protocol to
        make newly revealed test facts part of history).
    """

    def __init__(self, dataset: TKGDataset, window: int,
                 extra_facts: Optional[QuadrupleSet] = None):
        self.dataset = dataset
        self.window = window
        facts = dataset.all_facts()
        if extra_facts is not None and len(extra_facts):
            facts = facts.concat(extra_facts).unique()
        augmented = facts.with_inverses(dataset.num_relations)
        self._snap_by_time: Dict[int, Snapshot] = {
            t: Snapshot.from_array(t, arr)
            for t, arr in augmented.group_by_time().items()}
        self._snap_times = np.array(sorted(self._snap_by_time),
                                    dtype=np.int64)
        self._augmented = augmented
        self.reset()

    def reset(self) -> None:
        """Rewind the monotonic global index (call at each epoch start)."""
        self.global_index = GlobalHistoryIndex(self._augmented)
        self._subgraph_cache: Dict[Tuple[int, bytes, bytes],
                                   Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    def window_before(self, query_time: int) -> List[Snapshot]:
        """The last ``window`` non-empty snapshots before ``query_time``.

        Walks back over *existing* snapshot times, so streams with
        timestamp gaps (sparse long-gap tracks) still fill the full
        window — the paper's "latest m snapshots" (§III-C), not the last
        m raw timestamps.
        """
        end = int(np.searchsorted(self._snap_times, query_time, side="left"))
        start = max(0, end - self.window)
        return [self._snap_by_time[int(t)]
                for t in self._snap_times[start:end]]

    def global_edges(self, query_time: int, subjects: np.ndarray,
                     relations: np.ndarray
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Merged historical query subgraph for a batch (cached per batch).

        The cache key includes the query pairs, not just the timestamp:
        the §III-D subgraph is seeded from each query's ``(s, r)`` and its
        historical answers, so the forward and inverse phases of one
        timestamp seed *different* subgraphs and may not share one merged
        edge set.  Identical repeated batches still hit the cache.
        """
        key = (query_time, subjects.tobytes(), relations.tobytes())
        if key not in self._subgraph_cache:
            self.global_index.advance_to(query_time)
            pairs = list(zip(subjects.tolist(), relations.tolist()))
            # Deduplicated edges measure better than multiplicity-weighted
            # ones at bench scale (the repeated edges over-smooth the
            # R-GCN aggregation); subgraph_for_queries exposes both.
            self._subgraph_cache[key] = (
                self.global_index.subgraph_for_queries(pairs,
                                                       deduplicate=True))
        return self._subgraph_cache[key]


@dataclass
class TimestepBatch:
    """All queries of one timestamp in one propagation phase.

    ``subjects[i]``, ``relations[i]`` form query *i*; ``objects[i]`` is its
    gold answer.  ``phase`` is ``"forward"`` for original facts and
    ``"inverse"`` for the reversed ones (relation ids already offset).
    Lazy accessors pull the local window and global subgraph from the
    shared :class:`HistoryContext`.
    """

    time: int
    subjects: np.ndarray
    relations: np.ndarray
    objects: np.ndarray
    phase: str
    context: HistoryContext

    def __len__(self) -> int:
        return len(self.subjects)

    @property
    def snapshots(self) -> List[Snapshot]:
        return self.context.window_before(self.time)

    @property
    def global_edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self.context.global_edges(self.time, self.subjects,
                                         self.relations)

    @property
    def history_index(self):
        """The shared global history index, advanced to this timestamp.

        Copy-mechanism baselines (CyGNet, TiRGN, CENET) read historical
        answer vocabularies from here without materializing a subgraph.
        """
        self.context.global_index.advance_to(self.time)
        return self.context.global_index

    @property
    def num_entities(self) -> int:
        return self.context.dataset.num_entities


def iter_timestep_batches(dataset: TKGDataset, split: str,
                          context: HistoryContext,
                          phases: Sequence[str] = PHASES,
                          min_history: int = 1) -> Iterator[TimestepBatch]:
    """Yield per-timestamp query batches of ``split`` in time order.

    ``phases`` selects the two-phase propagation halves (Table VII's
    LogCL-FP uses ``("forward",)``, LogCL-SP uses ``("inverse",)``).
    Timestamps earlier than ``min_history`` are skipped — there is no
    history to condition on.
    """
    unknown = set(phases) - set(PHASES)
    if unknown:
        raise ValueError(f"unknown phases {sorted(unknown)}; valid: {PHASES}")
    quads = dataset.splits()[split]
    num_rel = dataset.num_relations
    for t, facts in sorted(quads.group_by_time().items()):
        if t < min_history:
            continue
        if "forward" in phases:
            yield TimestepBatch(
                time=int(t), subjects=facts[:, 0].copy(),
                relations=facts[:, 1].copy(), objects=facts[:, 2].copy(),
                phase="forward", context=context)
        if "inverse" in phases:
            yield TimestepBatch(
                time=int(t), subjects=facts[:, 2].copy(),
                relations=facts[:, 1] + num_rel, objects=facts[:, 0].copy(),
                phase="inverse", context=context)
