"""Feature flags for the hot-path performance kernels.

The PR-8 speed pass rewired the encoder hot loop — fused message-passing
/ GRU / relation-evolution kernels, cached in-degree normalizers, a
key-encoded subgraph deduplicator, inverse-phase context reuse and
dataset-keyed filter memoization.  Each lever sits behind a flag here,
default **on**, with the pre-pass implementation kept callable:

* correctness tests assert the fast and legacy paths agree (bitwise for
  forwards, atol-bounded for gradients);
* ``benchmarks/test_perf_pass.py`` measures the honest before/after by
  running the same workload under :func:`legacy_kernels`.

Flags are process-global (the model stack has no per-instance config
surface for execution details, and forked shard workers inherit the
parent's flag state copy-on-write, so a whole pass always runs one
configuration).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, fields


@dataclass
class PerfFlags:
    """Toggles for each independent optimization of the speed pass."""

    fused_kernels: bool = True      # fused R-GCN/CompGCN/GRU/evolve ops
    degree_cache: bool = True       # memoized bincount/in-degree normalizers
    fast_dedupe: bool = True        # key-encoded subgraph dedup (vs axis=0 unique)
    reuse_eval_context: bool = True  # share per-timestamp context across phases
    filter_cache: bool = True       # memoize eval filters per dataset
    inplace_optim: bool = True      # allocation-free Adam step / grad-clip norm


FLAGS = PerfFlags()


@contextlib.contextmanager
def legacy_kernels(**overrides: bool):
    """Run a block on the pre-pass code paths (every flag off).

    Keyword overrides re-enable individual levers, e.g.
    ``legacy_kernels(degree_cache=True)``.  Restores the previous flag
    state on exit; used by the parity tests and the perf benchmark's
    "before" measurements.
    """
    saved = {f.name: getattr(FLAGS, f.name) for f in fields(FLAGS)}
    unknown = set(overrides) - set(saved)
    if unknown:
        raise TypeError(f"unknown perf flags: {sorted(unknown)}")
    try:
        for name in saved:
            setattr(FLAGS, name, overrides.get(name, False))
        yield FLAGS
    finally:
        for name, value in saved.items():
            setattr(FLAGS, name, value)


def clear_perf_caches() -> None:
    """Drop every process-level memo the fast paths maintain.

    Covers the scatter-matrix/segment-count caches in ``repro.nn.ops``
    (the in-degree normalizers of ``repro.graph.base`` derive from the
    latter) and the eval filter memo in ``repro.eval.protocol``.
    Benchmarks call this between timed passes so both sides start cold.
    """
    from .nn import ops as _ops
    if _ops._SCATTER_CACHE is not None:
        _ops._SCATTER_CACHE.clear()
    if _ops._COUNTS_CACHE is not None:
        _ops._COUNTS_CACHE.clear()
    from .eval import protocol as _protocol
    _protocol._FILTER_MEMO.clear()
