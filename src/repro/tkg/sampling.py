"""Negative sampling utilities for margin-based training.

Translation-family models (TransE lineage: TTransE, RotatE) are
classically trained with margin ranking over corrupted triples rather
than full-softmax cross-entropy.  These helpers generate the corrupted
candidates; :func:`repro.nn.functional.margin_ranking_loss` consumes the
resulting score pairs.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

import numpy as np


def corrupt_objects(objects: np.ndarray, num_entities: int,
                    rng: np.random.Generator,
                    num_negatives: int = 1,
                    avoid: Optional[np.ndarray] = None) -> np.ndarray:
    """Sample corrupted objects for each positive fact.

    Returns an ``(len(objects), num_negatives)`` array of entity ids,
    resampled so no negative equals its positive (and, if ``avoid`` is
    given as a per-row 2-D mask-compatible array, none of those either —
    used to avoid sampling other true answers of the same query).
    """
    if num_entities < 2:
        raise ValueError("need at least 2 entities to corrupt")
    negatives = rng.integers(0, num_entities,
                             size=(len(objects), num_negatives))
    for _ in range(10):  # resampling loop; collision probability shrinks fast
        collisions = negatives == objects[:, None]
        if avoid is not None:
            collisions |= np.isin(negatives, avoid)
        if not collisions.any():
            break
        negatives[collisions] = rng.integers(0, num_entities,
                                             size=int(collisions.sum()))
    # final guard: shift any remaining collision deterministically
    collisions = negatives == objects[:, None]
    negatives[collisions] = (negatives[collisions] + 1) % num_entities
    return negatives


def corruption_rate(negatives: np.ndarray, truths: Set[Tuple[int, int]],
                    subjects: np.ndarray) -> float:
    """Fraction of sampled negatives that are accidentally true facts.

    Diagnostic: with dense datasets, naive corruption produces false
    negatives; this measures how often, given a set of true
    (subject, object) pairs.
    """
    hits = 0
    total = negatives.size
    for row, subject in enumerate(subjects):
        for obj in negatives[row]:
            if (int(subject), int(obj)) in truths:
                hits += 1
    return hits / max(total, 1)
