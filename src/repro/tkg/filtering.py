"""Answer-filtering indices for ranking evaluation.

TKG extrapolation papers (and this one, §IV-B1) report the *time-aware
filtered* setting: when ranking candidate objects for query ``(s, r, ?, t)``
only the other true objects *at the same timestamp t* are removed from the
candidate list.  The legacy *static filtered* setting removes true objects
at any timestamp, which leaks future information; the *raw* setting removes
nothing.  All three are provided.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, Set, Tuple

import numpy as np

from .quadruples import QuadrupleSet


class TimeAwareFilter:
    """Index of true objects keyed by (subject, relation, time)."""

    def __init__(self, facts: Iterable[QuadrupleSet]):
        index: Dict[Tuple[int, int, int], Set[int]] = defaultdict(set)
        for quad_set in facts:
            arr = quad_set.array
            for s, r, o, t in arr:
                index[(int(s), int(r), int(t))].add(int(o))
        self._index: Dict[Tuple[int, int, int], FrozenSet[int]] = {
            key: frozenset(vals) for key, vals in index.items()}

    def true_objects(self, s: int, r: int, t: int) -> FrozenSet[int]:
        """All objects o such that (s, r, o, t) is a known fact."""
        return self._index.get((s, r, t), frozenset())

    def add_facts(self, facts) -> None:
        """Incrementally index newly revealed facts.

        Serving engines ingest snapshots one at a time; this keeps the
        filter in sync without rebuilding the whole index.  Accepts a
        :class:`QuadrupleSet` or a plain ``(k, 4)`` array.
        """
        arr = facts.array if isinstance(facts, QuadrupleSet) else \
            np.asarray(facts, dtype=np.int64)
        fresh: Dict[Tuple[int, int, int], Set[int]] = defaultdict(set)
        for s, r, o, t in arr:
            fresh[(int(s), int(r), int(t))].add(int(o))
        for key, objs in fresh.items():
            self._index[key] = self._index.get(key, frozenset()) | objs

    def filter_scores(self, scores: np.ndarray, s: int, r: int, t: int,
                      target: int) -> np.ndarray:
        """Return a copy of ``scores`` with competing true objects at -inf.

        The gold ``target`` itself keeps its score so its rank is defined.
        """
        others = self.true_objects(s, r, t) - {target}
        if not others:
            return scores
        filtered = scores.copy()
        filtered[list(others)] = -np.inf
        return filtered


class StaticFilter:
    """Index of true objects keyed by (subject, relation) over all time.

    Provided for comparison with older evaluation protocols; the paper
    argues this setting is unsuitable for extrapolation (it filters out
    facts that legitimately recur at the query time).
    """

    def __init__(self, facts: Iterable[QuadrupleSet]):
        index: Dict[Tuple[int, int], Set[int]] = defaultdict(set)
        for quad_set in facts:
            for s, r, o, _ in quad_set.array:
                index[(int(s), int(r))].add(int(o))
        self._index: Dict[Tuple[int, int], FrozenSet[int]] = {
            key: frozenset(vals) for key, vals in index.items()}

    def true_objects(self, s: int, r: int) -> FrozenSet[int]:
        return self._index.get((s, r), frozenset())

    def filter_scores(self, scores: np.ndarray, s: int, r: int,
                      target: int) -> np.ndarray:
        others = self.true_objects(s, r) - {target}
        if not others:
            return scores
        filtered = scores.copy()
        filtered[list(others)] = -np.inf
        return filtered
