"""Answer-filtering indices for ranking evaluation.

TKG extrapolation papers (and this one, §IV-B1) report the *time-aware
filtered* setting: when ranking candidate objects for query ``(s, r, ?, t)``
only the other true objects *at the same timestamp t* are removed from the
candidate list.  The legacy *static filtered* setting removes true objects
at any timestamp, which leaks future information; the *raw* setting removes
nothing.  All three are provided.
"""

from __future__ import annotations

from collections import OrderedDict, defaultdict
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

import numpy as np

from .quadruples import QuadrupleSet

_EMPTY = np.empty(0, dtype=np.int64)

# Packed mask-index batches retained per filter.  Mask indices depend
# only on the query batch and the indexed facts — not on scores — so one
# build serves every rescoring of the same batch (trainer eval epochs,
# per-model benchmark tables, serving evaluation loops).
_MASK_CACHE_SIZE = 4096


def _pack_mask_indices(per_row_cols: List[np.ndarray],
                       row_lengths: List[Tuple[int, int]]
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate per-row column lists into packed (rows, cols) arrays."""
    if not per_row_cols:
        return _EMPTY, _EMPTY.copy()
    cols = np.concatenate(per_row_cols)
    rows = np.repeat(np.asarray([r for r, _ in row_lengths], dtype=np.int64),
                     np.asarray([n for _, n in row_lengths], dtype=np.int64))
    return rows, cols


class TimeAwareFilter:
    """Index of true objects keyed by (subject, relation, time)."""

    def __init__(self, facts: Iterable[QuadrupleSet]):
        index: Dict[Tuple[int, int, int], Set[int]] = defaultdict(set)
        for quad_set in facts:
            arr = quad_set.array
            for s, r, o, t in arr:
                index[(int(s), int(r), int(t))].add(int(o))
        self._index: Dict[Tuple[int, int, int], FrozenSet[int]] = {
            key: frozenset(vals) for key, vals in index.items()}
        self._arrays: Dict[Tuple[int, int, int], np.ndarray] = {}
        self._mask_cache: "OrderedDict[tuple, Tuple[np.ndarray, np.ndarray]]" \
            = OrderedDict()

    def true_objects(self, s: int, r: int, t: int) -> FrozenSet[int]:
        """All objects o such that (s, r, o, t) is a known fact."""
        return self._index.get((s, r, t), frozenset())

    def _objects_array(self, key: Tuple[int, int, int]) -> np.ndarray:
        """Sorted array view of one key's true objects (memoized)."""
        cached = self._arrays.get(key)
        if cached is None:
            objs = self._index.get(key)
            cached = (np.fromiter(sorted(objs), dtype=np.int64, count=len(objs))
                      if objs else _EMPTY)
            self._arrays[key] = cached
        return cached

    def mask_indices_for_batch(self, subjects: Sequence[int],
                               relations: Sequence[int], time: int,
                               targets: Sequence[int]
                               ) -> Tuple[np.ndarray, np.ndarray]:
        """Packed ``(rows, cols)`` indices of competing true objects.

        For query row ``i`` = ``(subjects[i], relations[i], ?, time)`` the
        column entries are ``true_objects(s_i, r_i, time) - {targets[i]}``.
        One fancy-index assignment ``scores[rows, cols] = -inf`` then
        applies the time-aware filter to the whole ``(Q, |E|)`` score
        matrix without per-query copies.

        The packed arrays are built once per distinct batch and memoized
        (they depend on the queries and the indexed facts, never on
        scores); callers must treat them as read-only.
        """
        subjects = np.ascontiguousarray(subjects, dtype=np.int64)
        relations = np.ascontiguousarray(relations, dtype=np.int64)
        targets = np.ascontiguousarray(targets, dtype=np.int64)
        time = int(time)
        # tobytes() keying is collision-safe here only because the three
        # arrays were just normalized to contiguous int64 (fixed width,
        # aligned lengths); see repro.history.array_key for the general
        # dtype/length-collision hazard.
        key = (time, subjects.tobytes(), relations.tobytes(),
               targets.tobytes())
        cached = self._mask_cache.get(key)
        if cached is not None:
            self._mask_cache.move_to_end(key)
            return cached
        per_row: List[np.ndarray] = []
        lengths: List[Tuple[int, int]] = []
        for row, (s, r, o) in enumerate(zip(subjects.tolist(),
                                            relations.tolist(),
                                            targets.tolist())):
            cols = self._objects_array((s, r, time))
            if not len(cols):
                continue
            cols = cols[cols != o]
            if not len(cols):
                continue
            per_row.append(cols)
            lengths.append((row, len(cols)))
        packed = _pack_mask_indices(per_row, lengths)
        self._mask_cache[key] = packed
        if len(self._mask_cache) > _MASK_CACHE_SIZE:
            self._mask_cache.popitem(last=False)
        return packed

    def add_facts(self, facts) -> None:
        """Incrementally index newly revealed facts.

        Serving engines ingest snapshots one at a time; this keeps the
        filter in sync without rebuilding the whole index.  Accepts a
        :class:`QuadrupleSet` or a plain ``(k, 4)`` array.
        """
        arr = facts.array if isinstance(facts, QuadrupleSet) else \
            np.asarray(facts, dtype=np.int64)
        fresh: Dict[Tuple[int, int, int], Set[int]] = defaultdict(set)
        for s, r, o, t in arr:
            fresh[(int(s), int(r), int(t))].add(int(o))
        for key, objs in fresh.items():
            self._index[key] = self._index.get(key, frozenset()) | objs
            self._arrays.pop(key, None)
        self._mask_cache.clear()

    def filter_scores(self, scores: np.ndarray, s: int, r: int, t: int,
                      target: int) -> np.ndarray:
        """Return a copy of ``scores`` with competing true objects at -inf.

        The gold ``target`` itself keeps its score so its rank is defined.
        """
        others = self.true_objects(s, r, t) - {target}
        if not others:
            return scores
        filtered = scores.copy()
        filtered[list(others)] = -np.inf
        return filtered


class StaticFilter:
    """Index of true objects keyed by (subject, relation) over all time.

    Provided for comparison with older evaluation protocols; the paper
    argues this setting is unsuitable for extrapolation (it filters out
    facts that legitimately recur at the query time).
    """

    def __init__(self, facts: Iterable[QuadrupleSet]):
        index: Dict[Tuple[int, int], Set[int]] = defaultdict(set)
        for quad_set in facts:
            for s, r, o, _ in quad_set.array:
                index[(int(s), int(r))].add(int(o))
        self._index: Dict[Tuple[int, int], FrozenSet[int]] = {
            key: frozenset(vals) for key, vals in index.items()}
        self._arrays: Dict[Tuple[int, int], np.ndarray] = {}
        self._mask_cache: "OrderedDict[tuple, Tuple[np.ndarray, np.ndarray]]" \
            = OrderedDict()

    def true_objects(self, s: int, r: int) -> FrozenSet[int]:
        return self._index.get((s, r), frozenset())

    def mask_indices_for_batch(self, subjects: Sequence[int],
                               relations: Sequence[int], time: int,
                               targets: Sequence[int]
                               ) -> Tuple[np.ndarray, np.ndarray]:
        """Packed ``(rows, cols)`` indices of competing true objects.

        Signature-compatible with
        :meth:`TimeAwareFilter.mask_indices_for_batch` so ranking code can
        treat both filters uniformly; ``time`` is ignored (this filter
        strikes true objects at *any* timestamp).  Built once per
        distinct batch and memoized; callers must treat the returned
        arrays as read-only.
        """
        subjects = np.ascontiguousarray(subjects, dtype=np.int64)
        relations = np.ascontiguousarray(relations, dtype=np.int64)
        targets = np.ascontiguousarray(targets, dtype=np.int64)
        # Safe tobytes() keying: all three arrays are contiguous int64 of
        # equal length by the normalization above (cf. repro.history
        # .array_key).
        key = (subjects.tobytes(), relations.tobytes(), targets.tobytes())
        cached = self._mask_cache.get(key)
        if cached is not None:
            self._mask_cache.move_to_end(key)
            return cached
        per_row: List[np.ndarray] = []
        lengths: List[Tuple[int, int]] = []
        for row, (s, r, o) in enumerate(zip(subjects.tolist(),
                                            relations.tolist(),
                                            targets.tolist())):
            pair = (s, r)
            cols = self._arrays.get(pair)
            if cols is None:
                objs = self._index.get(pair)
                cols = (np.fromiter(sorted(objs), dtype=np.int64,
                                    count=len(objs)) if objs else _EMPTY)
                self._arrays[pair] = cols
            if not len(cols):
                continue
            cols = cols[cols != o]
            if not len(cols):
                continue
            per_row.append(cols)
            lengths.append((row, len(cols)))
        packed = _pack_mask_indices(per_row, lengths)
        self._mask_cache[key] = packed
        if len(self._mask_cache) > _MASK_CACHE_SIZE:
            self._mask_cache.popitem(last=False)
        return packed

    def filter_scores(self, scores: np.ndarray, s: int, r: int,
                      target: int) -> np.ndarray:
        others = self.true_objects(s, r) - {target}
        if not others:
            return scores
        filtered = scores.copy()
        filtered[list(others)] = -np.inf
        return filtered
