"""``repro.tkg`` — the temporal-knowledge-graph data substrate.

Quadruple storage (:mod:`repro.tkg.quadruples`), datasets with
chronological splits and snapshot views (:mod:`repro.tkg.dataset`),
evaluation filters (:mod:`repro.tkg.filtering`), vocabularies and disk IO
compatible with the public ICEWS/GDELT benchmark format.
"""

from .dataset import Snapshot, TKGDataset, chronological_split
from .filtering import StaticFilter, TimeAwareFilter
from .io import (load_benchmark_directory, load_quadruple_file,
                 save_benchmark_directory, save_quadruple_file)
from .quadruples import Quadruple, QuadrupleSet
from .sampling import corrupt_objects, corruption_rate
from .vocabulary import Vocabulary

__all__ = [
    "Quadruple", "QuadrupleSet", "Vocabulary",
    "Snapshot", "TKGDataset", "chronological_split",
    "TimeAwareFilter", "StaticFilter",
    "corrupt_objects", "corruption_rate",
    "load_quadruple_file", "save_quadruple_file",
    "load_benchmark_directory", "save_benchmark_directory",
]
