"""Temporal knowledge graph dataset: snapshots, splits, augmentation.

A :class:`TKGDataset` bundles the train/valid/test quadruple sets together
with the entity/relation vocabulary sizes, mirroring the standard
extrapolation protocol: splits are *chronological* (80/10/10 in the paper)
so the model never trains on timestamps it is evaluated on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .quadruples import QuadrupleSet
from .vocabulary import Vocabulary


@dataclass(frozen=True)
class Snapshot:
    """All facts at one timestamp, in edge-array form ready for a GCN.

    ``src``, ``rel``, ``dst`` are aligned int arrays; one GCN message flows
    along each (src --rel--> dst) edge.
    """

    time: int
    src: np.ndarray
    rel: np.ndarray
    dst: np.ndarray

    @classmethod
    def from_array(cls, t: int, facts: np.ndarray) -> "Snapshot":
        return cls(time=t, src=facts[:, 0].copy(), rel=facts[:, 1].copy(),
                   dst=facts[:, 2].copy())

    @property
    def num_edges(self) -> int:
        return len(self.src)

    def active_entities(self) -> np.ndarray:
        """Distinct entity ids appearing in this snapshot."""
        return np.unique(np.concatenate([self.src, self.dst]))


class TKGDataset:
    """A temporal KG with chronological train/valid/test splits.

    Parameters
    ----------
    name:
        Identifier (e.g. ``"icews14_like"``).
    train, valid, test:
        :class:`QuadrupleSet` splits with *original* (non-inverse) facts.
    num_entities, num_relations:
        Vocabulary sizes.  ``num_relations`` counts original relations;
        models that add inverses use ``2 * num_relations`` embedding rows.
    entity_vocab, relation_vocab:
        Optional human-readable vocabularies (used by the case study).
    static_facts:
        Optional static side graph ``(entity, static_rel, attribute)``
        triples, mirroring the static-KG information RE-GCN-family models
        attach on the ICEWS datasets.
    provenance:
        Optional mapping ``(s, r, o, t) -> pattern label``.  Synthetic
        generators record which generative pattern emitted each fact so
        evaluation results can be broken down per pattern
        (:mod:`repro.analysis`).
    """

    def __init__(self, name: str, train: QuadrupleSet, valid: QuadrupleSet,
                 test: QuadrupleSet, num_entities: int, num_relations: int,
                 entity_vocab: Optional[Vocabulary] = None,
                 relation_vocab: Optional[Vocabulary] = None,
                 static_facts: Optional[np.ndarray] = None,
                 provenance: Optional[Dict[Tuple[int, int, int, int], str]] = None,
                 time_granularity: str = "1 step"):
        self.name = name
        self.train = train
        self.valid = valid
        self.test = test
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.entity_vocab = entity_vocab
        self.relation_vocab = relation_vocab
        self.static_facts = static_facts
        self.provenance = provenance
        self.time_granularity = time_granularity
        self._validate()

    def _validate(self) -> None:
        for split_name, split in self.splits().items():
            if len(split) == 0:
                continue
            ent_max, rel_max, _ = split.max_ids()
            if ent_max >= self.num_entities:
                raise ValueError(
                    f"{split_name} split references entity {ent_max} but "
                    f"dataset declares {self.num_entities} entities")
            if rel_max >= self.num_relations:
                raise ValueError(
                    f"{split_name} split references relation {rel_max} but "
                    f"dataset declares {self.num_relations} relations")
        if len(self.train) and len(self.valid) and len(self.test):
            if not (self.train.times.max() < self.valid.times.min()
                    <= self.valid.times.max() < self.test.times.min()):
                raise ValueError("splits must be chronologically disjoint: "
                                 "train < valid < test")

    # ------------------------------------------------------------------
    @property
    def num_relations_with_inverses(self) -> int:
        return 2 * self.num_relations

    def splits(self) -> Dict[str, QuadrupleSet]:
        return {"train": self.train, "valid": self.valid, "test": self.test}

    def all_facts(self) -> QuadrupleSet:
        return self.train.concat(self.valid).concat(self.test)

    @property
    def num_timestamps(self) -> int:
        all_times = self.all_facts().timestamps()
        return int(all_times.max()) + 1 if len(all_times) else 0

    # ------------------------------------------------------------------
    def snapshots(self, split: str = "train",
                  with_inverses: bool = True) -> List[Snapshot]:
        """Snapshots of one split in time order.

        With ``with_inverses`` (the paper's setting) each snapshot carries
        both the original and the reversed edges, so a single GCN pass
        propagates information in both directions.
        """
        quads = self.splits()[split]
        if with_inverses:
            quads = quads.with_inverses(self.num_relations)
        return [Snapshot.from_array(t, facts)
                for t, facts in sorted(quads.group_by_time().items())]

    def history_snapshots(self, query_time: int, window: int,
                          with_inverses: bool = True) -> List[Snapshot]:
        """The last ``window`` snapshots strictly before ``query_time``.

        Pulls from the union of all splits (standard extrapolation
        protocol: at test time the model may condition on all facts before
        the query timestamp, including validation-period ones).
        """
        facts = self.all_facts().between(max(0, query_time - window), query_time)
        if with_inverses:
            facts = facts.with_inverses(self.num_relations)
        return [Snapshot.from_array(t, arr)
                for t, arr in sorted(facts.group_by_time().items())]


def chronological_split(quads: QuadrupleSet, ratios: Sequence[float] = (0.8, 0.1, 0.1)
                        ) -> Tuple[QuadrupleSet, QuadrupleSet, QuadrupleSet]:
    """Split facts by timestamp into train/valid/test with ~given ratios.

    Splits on snapshot boundaries (a timestamp is never divided between
    splits), matching the preprocessing of RE-GCN / RE-NET that the paper
    follows.
    """
    if abs(sum(ratios) - 1.0) > 1e-9 or len(ratios) != 3:
        raise ValueError("ratios must be three values summing to 1")
    # One vectorized pass over the (already time-sorted) array; the
    # per-timestamp ``at_time`` loop this replaces re-sorted the whole
    # set once per distinct timestamp, which made million-fact synthetic
    # presets (repro.data.scale) quadratic to split.
    times, counts = np.unique(quads.times, return_counts=True)
    if len(times) < 3:
        raise ValueError("need at least 3 distinct timestamps to split")
    cumulative = np.cumsum(counts) / counts.sum()
    train_end = int(np.searchsorted(cumulative, ratios[0]) + 1)
    valid_end = int(np.searchsorted(cumulative, ratios[0] + ratios[1]) + 1)
    train_end = min(max(train_end, 1), len(times) - 2)
    valid_end = min(max(valid_end, train_end + 1), len(times) - 1)
    t_train = times[train_end - 1]
    t_valid = times[valid_end - 1]
    train = QuadrupleSet(quads.array[quads.times <= t_train])
    valid = QuadrupleSet(quads.array[(quads.times > t_train) & (quads.times <= t_valid)])
    test = QuadrupleSet(quads.array[quads.times > t_valid])
    return train, valid, test
