"""Entity/relation vocabularies for temporal knowledge graphs."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


class Vocabulary:
    """Bidirectional name <-> id mapping for entities or relations.

    Ids are assigned densely in insertion order, which keeps embedding
    tables compact and makes datasets reproducible when names are added in
    a deterministic order.
    """

    def __init__(self, names: Optional[Iterable[str]] = None):
        self._name_to_id: Dict[str, int] = {}
        self._id_to_name: List[str] = []
        if names is not None:
            for name in names:
                self.add(name)

    def add(self, name: str) -> int:
        """Register ``name`` (idempotent) and return its id."""
        existing = self._name_to_id.get(name)
        if existing is not None:
            return existing
        new_id = len(self._id_to_name)
        self._name_to_id[name] = new_id
        self._id_to_name.append(name)
        return new_id

    def id_of(self, name: str) -> int:
        return self._name_to_id[name]

    def name_of(self, idx: int) -> str:
        return self._id_to_name[idx]

    def __contains__(self, name: str) -> bool:
        return name in self._name_to_id

    def __len__(self) -> int:
        return len(self._id_to_name)

    def names(self) -> Sequence[str]:
        return tuple(self._id_to_name)

    def __repr__(self) -> str:
        return f"Vocabulary({len(self)} names)"
