"""Numpy-backed storage for temporal facts (quadruples).

A fact is ``(subject, relation, object, time)``; a :class:`QuadrupleSet`
stores many facts as a single ``(n, 4)`` :data:`FACT_DTYPE` array so that
grouping by timestamp, inverse augmentation and filtering are all
vectorized.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

Quadruple = Tuple[int, int, int, int]

# Canonical storage dtype for fact arrays, end-to-end: entity/relation
# ids and snapshot indices all fit comfortably in int32 (GDELT, the
# largest published benchmark, has ~7.7k entities and ~2.3M facts), and
# halving the bytes per column halves both the resident fact buffers and
# the on-disk ``repro.data`` store files.
FACT_DTYPE = np.int32

_FACT_MIN = int(np.iinfo(FACT_DTYPE).min)
_FACT_MAX = int(np.iinfo(FACT_DTYPE).max)


class QuadrupleSet:
    """An immutable collection of (s, r, o, t) facts.

    Parameters
    ----------
    array:
        ``(n, 4)`` integer array with columns subject, relation, object,
        time.  A copy is taken, narrowed to :data:`FACT_DTYPE` (values
        must fit int32) and sorted by (time, subject, relation, object)
        so iteration order is canonical.
    """

    __slots__ = ("array",)

    def __init__(self, array: np.ndarray):
        arr = np.asarray(array)
        if arr.dtype != FACT_DTYPE:
            arr = np.asarray(arr, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != 4:
            raise ValueError(f"expected (n, 4) array, got shape {arr.shape}")
        if arr.dtype != FACT_DTYPE and len(arr):
            low, high = int(arr.min()), int(arr.max())
            if low < _FACT_MIN or high > _FACT_MAX:
                raise ValueError(
                    f"fact values must fit {np.dtype(FACT_DTYPE).name} "
                    f"(got range [{low}, {high}])")
        order = np.lexsort((arr[:, 2], arr[:, 1], arr[:, 0], arr[:, 3]))
        self.array = np.ascontiguousarray(arr[order], dtype=FACT_DTYPE)
        self.array.setflags(write=False)

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_quads(cls, quads: Iterable[Sequence[int]]) -> "QuadrupleSet":
        quads = list(quads)
        if not quads:
            return cls(np.empty((0, 4), dtype=FACT_DTYPE))
        return cls(np.asarray(quads, dtype=np.int64))

    @classmethod
    def empty(cls) -> "QuadrupleSet":
        return cls(np.empty((0, 4), dtype=FACT_DTYPE))

    # -- basic protocol -------------------------------------------------------
    def __len__(self) -> int:
        return self.array.shape[0]

    def __iter__(self) -> Iterator[Quadruple]:
        for row in self.array:
            yield tuple(int(v) for v in row)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, QuadrupleSet)
                and self.array.shape == other.array.shape
                and bool(np.array_equal(self.array, other.array)))

    def __repr__(self) -> str:
        return f"QuadrupleSet({len(self)} facts)"

    # -- columns ---------------------------------------------------------------
    @property
    def subjects(self) -> np.ndarray:
        return self.array[:, 0]

    @property
    def relations(self) -> np.ndarray:
        return self.array[:, 1]

    @property
    def objects(self) -> np.ndarray:
        return self.array[:, 2]

    @property
    def times(self) -> np.ndarray:
        return self.array[:, 3]

    # -- queries ---------------------------------------------------------------
    def timestamps(self) -> np.ndarray:
        """Distinct timestamps in ascending order."""
        return np.unique(self.times)

    def at_time(self, t: int) -> "QuadrupleSet":
        """Facts with timestamp exactly ``t``."""
        return QuadrupleSet(self.array[self.times == t])

    def before(self, t: int) -> "QuadrupleSet":
        """Facts strictly earlier than ``t``."""
        return QuadrupleSet(self.array[self.times < t])

    def between(self, start: int, stop: int) -> "QuadrupleSet":
        """Facts with ``start <= time < stop``."""
        mask = (self.times >= start) & (self.times < stop)
        return QuadrupleSet(self.array[mask])

    def group_by_time(self) -> Dict[int, np.ndarray]:
        """Map each timestamp to its ``(k, 4)`` sub-array (views, sorted)."""
        groups: Dict[int, np.ndarray] = {}
        if len(self) == 0:
            return groups
        times = self.times
        boundaries = np.flatnonzero(np.diff(times)) + 1
        chunks = np.split(self.array, boundaries)
        for chunk in chunks:
            groups[int(chunk[0, 3])] = chunk
        return groups

    def with_inverses(self, num_relations: int) -> "QuadrupleSet":
        """Append inverse facts ``(o, r + num_relations, s, t)``.

        ``num_relations`` is the count of *original* relations; inverse
        relation ids live in ``[num_relations, 2 * num_relations)``.
        """
        if len(self) == 0:
            return self
        inv = self.array[:, [2, 1, 0, 3]].copy()
        inv[:, 1] += num_relations
        return QuadrupleSet(np.concatenate([self.array, inv], axis=0))

    def unique(self) -> "QuadrupleSet":
        """Drop duplicate facts."""
        return QuadrupleSet(np.unique(self.array, axis=0))

    def concat(self, other: "QuadrupleSet") -> "QuadrupleSet":
        return QuadrupleSet(np.concatenate([self.array, other.array], axis=0))

    def shift_times(self, offset: int) -> "QuadrupleSet":
        shifted = self.array.copy()
        shifted[:, 3] += offset
        return QuadrupleSet(shifted)

    def max_ids(self) -> Tuple[int, int, int]:
        """Return (max entity id, max relation id, max time) or (-1,-1,-1)."""
        if len(self) == 0:
            return (-1, -1, -1)
        ent = int(max(self.subjects.max(), self.objects.max()))
        return ent, int(self.relations.max()), int(self.times.max())
