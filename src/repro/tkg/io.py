"""Reading and writing quadruple files.

The on-disk format matches the public ICEWS/GDELT benchmark dumps used by
RE-GCN and successors: one fact per line, tab-separated integer ids
``subject  relation  object  time`` (a trailing fifth column, present in
some dumps, is ignored).  This means a user with the real ICEWS14 files
can drop them in and run every experiment against the genuine data.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

from .dataset import TKGDataset
from .quadruples import QuadrupleSet


def load_quadruple_file(path: str) -> QuadrupleSet:
    """Parse a tab/space-separated quadruple file into a QuadrupleSet."""
    rows = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 4:
                raise ValueError(f"{path}:{line_no}: expected >=4 columns, "
                                 f"got {len(parts)}")
            rows.append([int(parts[0]), int(parts[1]),
                         int(parts[2]), int(parts[3])])
    if not rows:
        return QuadrupleSet.empty()
    return QuadrupleSet(np.asarray(rows, dtype=np.int64))


def save_quadruple_file(quads: QuadrupleSet, path: str) -> None:
    """Write facts in the standard four-column format."""
    with open(path, "w") as handle:
        for s, r, o, t in quads.array:
            handle.write(f"{s}\t{r}\t{o}\t{t}\n")


def load_benchmark_directory(directory: str, name: Optional[str] = None
                             ) -> TKGDataset:
    """Load an RE-GCN-style dataset directory.

    Expects ``train.txt``, ``valid.txt`` and ``test.txt``; entity/relation
    counts come from ``stat.txt`` (two or three whitespace-separated ints)
    when present, otherwise from the data itself.
    """
    splits = {}
    for split in ("train", "valid", "test"):
        path = os.path.join(directory, f"{split}.txt")
        if not os.path.exists(path):
            raise FileNotFoundError(f"missing {path}")
        splits[split] = load_quadruple_file(path)

    stat_path = os.path.join(directory, "stat.txt")
    if os.path.exists(stat_path):
        with open(stat_path) as handle:
            parts = handle.read().split()
        num_entities, num_relations = int(parts[0]), int(parts[1])
    else:
        num_entities, num_relations = _infer_counts(splits)

    return TKGDataset(
        name=name or os.path.basename(os.path.normpath(directory)),
        train=splits["train"], valid=splits["valid"], test=splits["test"],
        num_entities=num_entities, num_relations=num_relations)


def save_benchmark_directory(dataset: TKGDataset, directory: str) -> None:
    """Write a dataset as an RE-GCN-style directory (incl. stat.txt)."""
    os.makedirs(directory, exist_ok=True)
    for split, quads in dataset.splits().items():
        save_quadruple_file(quads, os.path.join(directory, f"{split}.txt"))
    with open(os.path.join(directory, "stat.txt"), "w") as handle:
        handle.write(f"{dataset.num_entities}\t{dataset.num_relations}\n")


def _infer_counts(splits) -> Tuple[int, int]:
    ent_max = rel_max = -1
    for quads in splits.values():
        e, r, _ = quads.max_ids()
        ent_max = max(ent_max, e)
        rel_max = max(rel_max, r)
    return ent_max + 1, rel_max + 1
