"""``repro.robustness`` — Gaussian-noise sweeps (Fig. 2 / Fig. 5)."""

from .noise import (DEFAULT_SIGMAS, NoisePoint, NoiseSweepResult, noise_sweep)

__all__ = ["noise_sweep", "NoiseSweepResult", "NoisePoint", "DEFAULT_SIGMAS"]
