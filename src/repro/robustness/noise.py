"""Gaussian-noise robustness harness (paper Fig. 2 and Fig. 5).

The paper probes anti-noise ability by adding Gaussian noise "to the
entity representation as the initial input of the model" (relations stay
clean) and sweeping the noise variance.  Every
:class:`repro.interface.ExtrapolationModel` exposes the
``input_noise_std`` hook; this module sweeps it and reports the metric
trace plus the relative degradation the paper quotes (e.g. "the MRR of
REGCN ... reduced by 63.8%").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..eval.protocol import evaluate
from ..interface import ExtrapolationModel
from ..obs import NULL_TELEMETRY, Telemetry
from ..tkg.dataset import TKGDataset
from ..training.context import HistoryContext

DEFAULT_SIGMAS = (0.0, 0.25, 0.5, 1.0, 2.0)


@dataclass(frozen=True)
class NoisePoint:
    """Metrics at one noise intensity."""

    sigma: float
    mrr: float
    hits1: float
    hits3: float
    hits10: float


@dataclass
class NoiseSweepResult:
    """Full trace of a noise sweep for one model."""

    model_name: str
    points: List[NoisePoint]

    @property
    def clean_mrr(self) -> float:
        return self.points[0].mrr

    def degradation_percent(self, sigma: float) -> float:
        """Relative MRR drop vs. the clean run, in percent."""
        for point in self.points:
            if point.sigma == sigma:
                if self.clean_mrr == 0:
                    return 0.0
                return (1.0 - point.mrr / self.clean_mrr) * 100.0
        raise KeyError(f"sigma {sigma} not in sweep")

    def as_rows(self) -> List[Dict[str, float]]:
        return [{"sigma": p.sigma, "mrr": p.mrr, "hits@1": p.hits1,
                 "hits@3": p.hits3, "hits@10": p.hits10}
                for p in self.points]


def noise_sweep(model: ExtrapolationModel, dataset: TKGDataset,
                sigmas: Sequence[float] = DEFAULT_SIGMAS,
                split: str = "test", window: int = 3,
                model_name: str = "model",
                workers: int = 1,
                telemetry: Telemetry = NULL_TELEMETRY) -> NoiseSweepResult:
    """Evaluate ``model`` under each noise intensity (Fig. 5 protocol).

    The model's weights are untouched — only its input perturbation hook
    is set for the duration of each evaluation and restored afterwards.
    One :class:`repro.training.context.HistoryContext` — a facade over
    the shared :mod:`repro.history` store — is built up front and shared
    across the whole sweep (``evaluate`` rewinds it per pass), so the
    snapshot/index construction is paid once, not once per sigma.  A
    ``telemetry`` instance receives the per-pass evaluation spans plus
    the shared history cache's hit/miss counters.  ``workers`` shards
    each pass across forked processes; noisy passes then draw per-batch
    noise substreams, so sweep results are worker-count-independent
    (though not bitwise-equal to the serial draw order — see
    ``docs/parallel.md``).
    """
    if sigmas[0] != 0.0:
        raise ValueError("first sigma must be 0.0 (the clean reference)")
    previous = model.input_noise_std
    context = HistoryContext(dataset, window=window, telemetry=telemetry)
    points: List[NoisePoint] = []
    try:
        for sigma in sigmas:
            model.input_noise_std = float(sigma)
            metrics = evaluate(model, dataset, split, context=context,
                               window=window, workers=workers,
                               telemetry=telemetry)
            points.append(NoisePoint(sigma=float(sigma), mrr=metrics["mrr"],
                                     hits1=metrics["hits@1"],
                                     hits3=metrics["hits@3"],
                                     hits10=metrics["hits@10"]))
    finally:
        model.input_noise_std = previous
    return NoiseSweepResult(model_name=model_name, points=points)
