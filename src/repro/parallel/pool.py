"""Fork-based shard pool: the process-level execution layer.

Every hot read path in the repository — filtered evaluation, the online
protocol's predict phase, the noise sweep, serving-side ranking — walks
per-timestamp query shards whose only shared state is the *immutable*
history (:class:`repro.history.HistoryStore`'s fact buffer, the filters'
answer maps, the model's weights).  That makes the work embarrassingly
shardable: a forked worker inherits the whole parent image copy-on-write
and needs nothing pickled but a few-byte shard descriptor, and results
merge deterministically because every shard's output is a pure function
of (inherited state, descriptor).

:class:`ShardPool` packages that pattern:

* **state is inherited, not shipped** — the parent registers the shared
  state *before* forking; workers read it back through the module-level
  registry captured by ``fork``.  The multi-megabyte fact buffers and
  weight matrices cross the process boundary for free.
* **tasks are descriptors, results are small** — a task is typically a
  ``(start, end)`` range of batch indices; a result is a rank array plus
  a :meth:`repro.obs.Telemetry.export_state` snapshot.
* **order in, order out** — :meth:`ShardPool.map` returns results in
  task-submission order regardless of which worker finished first, which
  is what keeps merged metric rows bitwise-identical to the serial walk.
* **graceful degradation** — ``workers=1``, or any platform without the
  ``fork`` start method, runs the identical shard protocol serially in
  the parent process.  Same code path, same reduction tree, same floats.

The pool is deliberately synchronous and scoped (use it as a context
manager); it is an execution detail of the protocols in
:mod:`repro.parallel.evaluation` / :mod:`repro.parallel.training`, not a
general task system.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import NULL_TELEMETRY, Telemetry

# Shared-state registry, keyed by pool token.  Entries are registered
# before the pool forks, so worker processes inherit them copy-on-write;
# tokens keep nested pools (a sharded evaluate inside a sharded fit)
# from clobbering one another.
_SHARED: Dict[int, Any] = {}
_TOKENS = itertools.count(1)


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method.

    Copy-on-write inheritance is the whole point of the pool — spawn
    would re-import and re-pickle everything — so on fork-less platforms
    (Windows, some macOS configurations) the pool degrades to the serial
    shard protocol instead.
    """
    return "fork" in mp.get_all_start_methods()


def resolve_workers(workers: int) -> int:
    """Clamp a ``--workers`` request to what the platform can honour."""
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers if fork_available() else 1


# Minimum work items (facts/queries) a forked shard must amortize: below
# this, fork + result-pickling overhead dominates the shard's own compute
# and the sharded pass is slower than the serial walk it replicates.
MIN_ITEMS_PER_SHARD = 64


def effective_workers(workers: int, total_items: int,
                      floor: Optional[int] = None,
                      telemetry: Telemetry = NULL_TELEMETRY) -> int:
    """Degrade a worker request so every worker gets a meaningful shard.

    ``total_items`` is the protocol's own unit of work (queries for
    evaluation, rows for ranking).  With fewer than two floors' worth of
    items the request collapses to the serial path; otherwise it is
    capped so no worker's share drops below the floor.  ``floor=None``
    reads :data:`MIN_ITEMS_PER_SHARD` at call time (tests lower it to
    keep forking on tiny datasets).

    The degradation used to be silent; callers asking for ``workers=N``
    and measuring a 1x speedup had no way to see why.  Any reduction of
    a ``workers > 1`` request now lands in ``telemetry``: a
    ``parallel_serial_collapse`` counter when the request collapses all
    the way to the serial path, a ``parallel_workers_capped`` counter
    for a partial cap, and the granted count as the
    ``parallel_effective_workers`` observation either way.
    """
    requested = resolve_workers(workers)
    granted = requested
    if requested > 1:
        if floor is None:
            floor = MIN_ITEMS_PER_SHARD
        if floor > 0:
            capacity = total_items // floor
            granted = 1 if capacity < 2 else min(requested, capacity)
    if requested > 1:
        if granted == 1:
            telemetry.incr("parallel_serial_collapse")
        elif granted < requested:
            telemetry.incr("parallel_workers_capped")
        telemetry.observe("parallel_effective_workers", float(granted))
    return granted


def plan_shards(num_items: int, workers: int, oversubscribe: int = 2,
                weights: Optional[Sequence[float]] = None
                ) -> List[Tuple[int, int]]:
    """Split ``range(num_items)`` into contiguous ``(start, end)`` shards.

    Produces roughly ``workers * oversubscribe`` shards so a slow shard
    cannot stall the pool for a whole epoch of work; for one worker the
    plan is a single shard (the serial walk).  Contiguity matters: batch
    lists are time-ordered, so a contiguous shard advances its worker's
    monotonic history index forward only.

    ``weights`` autotunes the shard *boundaries* to per-item cost: item
    counts are a poor proxy when items are whole timestamp batches whose
    query counts vary by an order of magnitude, so with weights the
    bounds equalize cumulative weight instead (boundaries land where the
    running total crosses each equal fraction of the grand total).
    Unweighted plans are unchanged.
    """
    if num_items <= 0:
        return []
    if workers <= 1:
        return [(0, num_items)]
    target = min(num_items, max(1, workers * oversubscribe))
    if weights is not None:
        w = np.asarray(weights, dtype=np.float64)
        if len(w) != num_items:
            raise ValueError(f"got {len(w)} weights for {num_items} items")
        total = float(w.sum())
        if total > 0.0:
            cumulative = np.cumsum(w)
            marks = total * np.arange(1, target) / target
            inner = np.searchsorted(cumulative, marks, side="left") + 1
            bounds = [0] + [int(b) for b in np.minimum(inner, num_items)] \
                + [num_items]
            return [(a, b) for a, b in zip(bounds[:-1], bounds[1:]) if b > a]
    bounds = [round(i * num_items / target) for i in range(target + 1)]
    return [(a, b) for a, b in zip(bounds[:-1], bounds[1:]) if b > a]


def _invoke(item: Tuple[Callable[[Any, Any], Any], int, Any]) -> Any:
    """Run one task against the registered shared state (worker side)."""
    fn, token, payload = item
    return fn(_SHARED[token], payload)


class ShardPool:
    """A pool of forked workers sharing parent state copy-on-write.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``1`` (or a fork-less platform)
        runs tasks serially in the parent through the identical shard
        protocol, so results are reduction-tree-identical to the
        parallel run.
    shared:
        Arbitrary state registered for the pool's lifetime.  Workers
        receive it as the first argument of every task function; because
        it is registered *before* the fork, it is inherited by the
        worker images and never pickled.

    Notes
    -----
    Task functions must be module-level (they cross the process boundary
    by reference).  Worker-side mutation of the shared state affects only
    that worker's copy — the pattern relies on the state being immutable
    or worker-private (history stores, caches of pure functions).
    """

    def __init__(self, workers: int, shared: Any = None):
        self.workers = resolve_workers(workers)
        self._token = next(_TOKENS)
        _SHARED[self._token] = shared
        self._pool: Optional[Any] = None
        if self.workers > 1:
            # State must be registered before this line: Pool() forks
            # its workers immediately, snapshotting _SHARED.
            self._pool = mp.get_context("fork").Pool(self.workers)

    # -- execution ------------------------------------------------------
    def map(self, fn: Callable[[Any, Any], Any],
            payloads: Sequence[Any]) -> List[Any]:
        """Run ``fn(shared, payload)`` per payload; results in task order.

        Worker exceptions propagate to the caller.  ``chunksize=1``
        keeps scheduling greedy so heterogeneous shards load-balance.
        """
        if self._token not in _SHARED:
            raise RuntimeError("ShardPool used after close()")
        items = [(fn, self._token, payload) for payload in payloads]
        if self._pool is None:
            return [_invoke(item) for item in items]
        return self._pool.map(_invoke, items, chunksize=1)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Terminate workers and drop the registered shared state."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        _SHARED.pop(self._token, None)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
