"""Sharded execution of the read-path protocols (evaluation, ranking).

The filtered evaluation protocol scores each ``(timestamp, phase)``
query batch independently given the preceding history, and history is
immutable during a pass — so a pass shards into contiguous blocks of
batches with **no cross-shard state**.  Each forked worker inherits the
model, the :class:`repro.training.context.HistoryContext` and the
filters copy-on-write, walks its block through the same batched ranking
kernel as the serial path, and returns per-batch rank arrays plus its
private telemetry snapshot.  The parent concatenates ranks in original
batch order (the reduction the serial accumulator performs), which is
what keeps ``workers=N`` metric rows bitwise-identical to ``workers=1``.

Determinism contract
--------------------
* **Noise-free models** (the normal case): ``workers=N`` is
  bitwise-identical to the serial walk for every ``N``, because scores
  are pure functions of (weights, batch, history) and ranks merge in
  batch order.
* **Noisy models** (``input_noise_std > 0``): the serial path draws
  noise from one sequential stream, which no parallel schedule can
  reproduce.  The sharded path instead derives a per-batch substream
  from one key drawn off the model's stream
  (:meth:`repro.interface.ExtrapolationModel.draw_noise_seed`), making
  the pass a pure function of (weights, key, batch) — identical across
  worker counts, though not to the serial draw order.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..eval.metrics import ranks_of_targets
from ..eval.ranking import batch_ranks_per_query, batch_ranks_vectorized
from ..obs import NULL_TELEMETRY, Telemetry
from .pool import ShardPool, effective_workers, plan_shards

# Per-worker-process cache of re-opened store files, keyed by path.  A
# forked worker adopting a memory-mapped store re-opens the backing file
# once and reuses the mapping for every shard it runs.
_WORKER_STORES: Dict[str, object] = {}


def _adopt_worker_store(context, path: str) -> None:
    """Point a worker's inherited context at a re-opened mapped store.

    Workers get the *path* of a memory-mapped history store instead of
    relying on copy-on-write inheritance of the parent's arrays: every
    worker's ``np.memmap`` of the same file shares one physical copy
    through the OS page cache, and the worker-private index/cache
    structures start empty instead of duplicating the parent's.
    """
    store = _WORKER_STORES.get(path)
    if store is None:
        from ..data.storefile import open_store
        store = open_store(path)
        _WORKER_STORES[path] = store
    if context.store is not store:
        context.adopt_store(store)


def _run_eval_shard(state: Dict, payload: Tuple[int, int]
                    ) -> Tuple[List[np.ndarray], Dict]:
    """Score and rank one contiguous block of batches (worker side).

    Returns the per-batch rank arrays in block order plus the worker's
    telemetry snapshot.  The worker's history-context copy advances its
    monotonic index forward only, because blocks are contiguous in the
    time-ordered batch list.
    """
    start, end = payload
    telemetry = Telemetry("shard")
    model = state["model"]
    context = state["context"]
    if (state.get("store_path") is not None
            and os.getpid() != state["parent_pid"]):
        # Forked worker + file-backed store: re-open by path.  The pid
        # check keeps the serial fallback (same process) reading the
        # caller's own context untouched.
        _adopt_worker_store(context, state["store_path"])
    context.bind_telemetry(telemetry)
    rank_batch = (batch_ranks_vectorized if state["batched"]
                  else batch_ranks_per_query)
    noise_key = state["noise_key"]
    # Mirror the serial protocol's inverse-phase context reuse: blocks
    # are contiguous in the time-ordered batch list, so a shard usually
    # holds both phases of its timestamps and shares one precomputed
    # context per timestamp.  Noisy models reseed per batch — their
    # contexts are batch-dependent and must not be shared.
    from ..eval.protocol import predict_scores_reusing, reuse_context_enabled
    context_memo = ({} if noise_key is None and reuse_context_enabled(model)
                    else None)
    ranks_out: List[np.ndarray] = []
    for index in range(start, end):
        batch = state["batches"][index]
        if noise_key is not None:
            model.reseed_noise((noise_key, index))
        with telemetry.span("forward"):
            scores = (predict_scores_reusing(model, batch, context_memo)
                      if context_memo is not None
                      else model.predict_on(batch))
        with telemetry.span("rank"):
            ranks = rank_batch(scores, batch, state["time_filter"],
                               state["static_filter"])
        telemetry.incr("queries_evaluated", len(batch))
        ranks_out.append(ranks)
    if not state.get("want_telemetry", True):
        return ranks_out, None
    return ranks_out, telemetry.export_state()


def sharded_ranks(model, batches: Sequence, time_filter, static_filter,
                  batched: bool, workers: int,
                  telemetry: Telemetry = NULL_TELEMETRY
                  ) -> List[np.ndarray]:
    """Rank every batch across a worker pool; one rank array per batch.

    ``batches`` is the time-ordered list the serial protocol would walk
    (each batch already bound to a shared history context).  Results
    come back in the same order, so the caller's accumulator sees ranks
    exactly as the serial loop would append them.  Worker telemetry
    snapshots are folded into ``telemetry`` (spans land under the bare
    stage names — a worker has no enclosing span to nest under).
    """
    if not batches:
        return []
    context = batches[0].context
    batch_sizes = [len(batch) for batch in batches]
    # Too few queries and forking costs more than it buys: degrade the
    # worker count (possibly to the serial path) before planning shards.
    # The degradation is observable: see effective_workers' counters.
    workers = effective_workers(workers, sum(batch_sizes),
                                telemetry=telemetry)
    noise_key = (model.draw_noise_seed()
                 if getattr(model, "input_noise_std", 0.0) > 0.0 else None)
    state = {
        "model": model, "context": context, "batches": list(batches),
        "time_filter": time_filter, "static_filter": static_filter,
        "batched": batched, "noise_key": noise_key,
        # Workers skip assembling/pickling telemetry snapshots nobody
        # will read when the parent evaluates with the null telemetry.
        "want_telemetry": telemetry is not NULL_TELEMETRY,
        # Mapped stores hand workers the backing-file path (plus the
        # parent pid so the serial fallback can tell it never forked).
        "store_path": getattr(getattr(context, "store", None),
                              "backing_path", None),
        "parent_pid": os.getpid(),
    }
    # Shard boundaries equalize *query counts*, not batch counts: whole
    # timestamps vary in size by an order of magnitude, and equal-batch
    # shards routinely left one worker with half the queries.
    shards = plan_shards(len(batches), workers, weights=batch_sizes)
    with ShardPool(workers, shared=state) as pool:
        results = pool.map(_run_eval_shard, shards)
    # The serial fallback ran the shard protocol in-process and rebound
    # the context's cache counters to per-shard telemetry; point them
    # back at the caller's instance either way.
    context.bind_telemetry(telemetry)
    ranks_in_order: List[np.ndarray] = []
    for block_ranks, telemetry_state in results:
        ranks_in_order.extend(block_ranks)
        if telemetry_state is not None:
            telemetry.merge_state(telemetry_state)
    return ranks_in_order


def _run_online_shard(state: Dict, payload: Tuple[Dict, int]
                      ) -> Tuple[np.ndarray, Dict]:
    """Predict-and-rank one phase batch of one timestamp (worker side).

    The online protocol adapts the model after every timestamp, so the
    parent ships the current weights with each task; everything heavy
    (history, filters, batch arrays) is inherited from the fork.
    """
    weights, index = payload
    telemetry = Telemetry("shard")
    model = state["model"]
    model.load_state_dict(weights)
    model.eval()
    state["context"].bind_telemetry(telemetry)
    batch = state["batches"][index]
    rank_batch = (batch_ranks_vectorized if state["batched"]
                  else batch_ranks_per_query)
    with telemetry.span("predict"):
        scores = model.predict_on(batch)
        ranks = rank_batch(scores, batch, state["time_filter"])
    telemetry.incr("queries_evaluated", len(batch))
    return ranks, telemetry.export_state()


class OnlineShardRunner:
    """Pool wrapper for the online protocol's per-timestamp predict phase.

    One pool lives for the whole online walk; each timestamp's phase
    batches are submitted as tasks carrying the *current* (post-adapt)
    weights.  Ranks come back in submission order, matching the serial
    loop's accumulator order bitwise.
    """

    def __init__(self, model, batches: Sequence, time_filter,
                 batched: bool, workers: int):
        self._batches = list(batches)
        workers = effective_workers(workers,
                                    sum(len(b) for b in self._batches))
        self._index_of = {id(batch): i for i, batch in enumerate(self._batches)}
        state = {
            "model": model, "batches": self._batches,
            "context": self._batches[0].context if self._batches else None,
            "time_filter": time_filter, "batched": batched,
        }
        self._model = model
        self._pool = ShardPool(workers, shared=state)

    def predict_group(self, group: Sequence,
                      telemetry: Telemetry = NULL_TELEMETRY
                      ) -> List[np.ndarray]:
        """Rank one timestamp's phase batches against current weights."""
        weights = self._model.state_dict()
        payloads = [(weights, self._index_of[id(batch)]) for batch in group]
        results = self._pool.map(_run_online_shard, payloads)
        ranks = []
        for batch_ranks, telemetry_state in results:
            telemetry.merge_state(telemetry_state)
            ranks.append(batch_ranks)
        return ranks

    def close(self) -> None:
        """Release the worker pool (idempotent)."""
        self._pool.close()

    def __enter__(self) -> "OnlineShardRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _run_rank_shard(state: Dict, payload: Tuple[int, int]) -> np.ndarray:
    """Filtered-rank one row block of a precomputed score matrix."""
    start, end = payload
    scores = state["scores"][start:end]
    targets = state["targets"][start:end]
    if state["filtered"]:
        rows, cols = state["filter"].mask_indices_for_batch(
            state["subjects"][start:end], state["relations"][start:end],
            state["time"], targets)
        if len(rows):
            scores = scores.copy()
            scores[rows, cols] = -np.inf
    return ranks_of_targets(scores, targets)


def sharded_filtered_ranks(scores: np.ndarray, subjects: np.ndarray,
                           relations: np.ndarray, targets: np.ndarray,
                           time: int, time_filter, filtered: bool,
                           workers: int,
                           telemetry: Telemetry = NULL_TELEMETRY
                           ) -> np.ndarray:
    """Shard the filtered-ranking kernel over row blocks of one batch.

    Scoring happens *before* this call (batch composition is model
    semantics — splitting the forward pass would change attention
    pooling); only the per-row mask-and-rank work fans out.  Row ranks
    are independent, so concatenating block results in row order is
    bitwise-identical to the one-shot kernel.  Worker-count degradation
    lands in ``telemetry`` (the serving engine passes its stats here, so
    a collapsed ``workers=N`` request shows up in ``stats.summary()``).
    """
    state = {
        "scores": scores, "subjects": subjects, "relations": relations,
        "targets": targets, "time": int(time), "filter": time_filter,
        "filtered": bool(filtered),
    }
    workers = effective_workers(workers, len(targets), telemetry=telemetry)
    shards = plan_shards(len(targets), workers)
    with ShardPool(workers, shared=state) as pool:
        blocks = pool.map(_run_rank_shard, shards)
    return np.concatenate(blocks) if blocks else np.empty(0, dtype=float)
