"""Process-pool execution layer: shard the read and train paths.

The package has three parts, layered strictly bottom-up:

* :mod:`repro.parallel.pool` — :class:`ShardPool`, a fork-based worker
  pool whose shared state is inherited copy-on-write (never pickled),
  with a serial in-process fallback that runs the identical shard
  protocol at ``workers=1`` or on fork-less platforms.
* :mod:`repro.parallel.evaluation` — sharded filtered evaluation,
  online predict sharding, and row-sharded serving-side ranking.
* :mod:`repro.parallel.training` — sharded gradient accumulation for
  :class:`repro.training.Trainer`.

Consumers (``eval/protocol.py``, ``training/trainer.py``, ``serving``,
``cli``) import this package lazily inside functions, so the dependency
arrow points from the protocols down into ``repro.parallel`` only when a
``workers`` request is actually made.
"""

from .pool import (MIN_ITEMS_PER_SHARD, ShardPool, effective_workers,
                   fork_available, plan_shards, resolve_workers)

__all__ = [
    "MIN_ITEMS_PER_SHARD",
    "ShardPool",
    "effective_workers",
    "fork_available",
    "plan_shards",
    "resolve_workers",
]
