"""Sharded gradient accumulation for the offline trainer.

The serial trainer takes one Adam step per timestamp batch.  The sharded
mode instead walks the same time-ordered batch list in groups of
``grad_accum`` batches: every batch in a group is shipped to a worker as
``(epoch, weights, batch_index)``, the worker computes that batch's
gradients against the *group-start* weights, and the parent reduces the
group's gradients to their mean, clips, and applies one Adam step.

Determinism contract
--------------------
* The reduction tree is fixed: one task per batch, gradients summed in
  batch order, divided by the group size.  Results return in submission
  order regardless of worker scheduling, and every training-time RNG
  (dropout masks, RReLU slopes) is reset per task to the substream
  ``(key, epoch, batch)`` — key drawn once in the parent
  (:meth:`repro.interface.ExtrapolationModel.reseed_rngs`).  A step is
  therefore a pure function of (weights, task): ``workers=1`` and
  ``workers=N`` produce bitwise-identical weight trajectories for the
  same ``grad_accum``.
* ``grad_accum=1`` degenerates to one batch per step against current
  weights — the classic serial trainer's *schedule* exactly.  For
  models with no training-time stochasticity the floats match the
  serial trainer bitwise (the single-gradient "mean" skips the scale);
  models that draw dropout/RReLU noise get per-task substreams instead
  of the serial trainer's one sequential stream — same distribution,
  different draws (the same trade the sharded noisy evaluation makes).
* ``grad_accum>1`` is a *different* (large-batch) schedule from the
  serial trainer — same model, coarser optimizer cadence — and is
  deterministic in its own right.

Workers inherit the model, the :class:`repro.training.context
.HistoryContext` and the materialized batch list copy-on-write at pool
creation; only weights and gradients cross the process boundary.  Each
worker rewinds its private history-store copy when it first sees a new
epoch, mirroring the serial trainer's per-epoch ``context.reset()``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import NULL_TELEMETRY, Telemetry
from .pool import ShardPool


def _run_grad_shard(state: Dict, payload: Tuple[int, Dict, int]
                    ) -> Tuple[float, Dict[str, np.ndarray], Dict]:
    """Compute one batch's loss and gradients (worker side).

    The worker loads the shipped weights, rewinds its private history
    copy on epoch boundaries (batch times restart each epoch and the
    store cursor is monotonic), and returns ``(loss, {name: grad},
    aux_state, telemetry_state)``.
    """
    epoch, weights, index = payload
    telemetry = Telemetry("shard")
    model = state["model"]
    context = state["context"]
    context.bind_telemetry(telemetry)
    if state.get("epoch_seen") != epoch:
        context.reset()
        state["epoch_seen"] = epoch   # worker-private under fork
    model.load_state_dict(weights)
    model.reseed_rngs((state["rng_key"], epoch, index))
    model.train()
    for param in model.parameters():
        param.grad = None
    batch = state["batches"][index]
    with telemetry.span("step"):
        loss = model.loss_on(batch)
        loss.backward()
    telemetry.incr("train_steps")
    grads = {name: param.grad
             for name, param in model.named_parameters()
             if param.grad is not None}
    return (float(loss.data), grads, model.export_aux_state(),
            telemetry.export_state())


class GradientShardRunner:
    """Pool wrapper computing group-mean gradients across workers.

    One runner (and its pool) lives for a whole :meth:`Trainer.fit`; the
    trainer drives it one accumulation group at a time and owns the
    optimizer step.
    """

    def __init__(self, model, context, batches: Sequence, workers: int,
                 telemetry: Telemetry = NULL_TELEMETRY):
        self._model = model
        self._context = context
        self._telemetry = telemetry
        # Drawn pre-fork, so every worker count derives the same per-task
        # dropout/RReLU substreams; drawing (not fixing) it keeps repeated
        # fits of one model from replaying identical noise.
        rng_key = model.draw_noise_seed()
        state = {"model": model, "context": context,
                 "batches": list(batches), "epoch_seen": None,
                 "rng_key": rng_key}
        self._pool = ShardPool(workers, shared=state)

    @property
    def workers(self) -> int:
        """The resolved worker count (1 on fork-less platforms)."""
        return self._pool.workers

    def group_gradients(self, epoch: int, indices: Sequence[int]
                        ) -> Tuple[List[float], Dict[str, np.ndarray]]:
        """Mean gradients of one accumulation group at current weights.

        Returns the per-batch losses (in batch order) and the name-keyed
        mean gradient.  A parameter absent from every batch's gradient
        is absent from the result (the caller leaves its ``grad`` unset,
        as the serial path would).
        """
        weights = self._model.state_dict()
        payloads = [(int(epoch), weights, int(i)) for i in indices]
        results = self._pool.map(_run_grad_shard, payloads)
        # The serial fallback rebound the shared context's telemetry to
        # per-task shard instances; restore the trainer's.
        self._context.bind_telemetry(self._telemetry)
        losses: List[float] = []
        summed: Dict[str, np.ndarray] = {}
        for loss, grads, aux_state, telemetry_state in results:
            losses.append(loss)
            self._telemetry.merge_state(telemetry_state)
            for name, grad in grads.items():
                summed[name] = (grad if name not in summed
                                else summed[name] + grad)
        # Heuristic state mutated by training-mode forwards (e.g. the
        # interpolation baselines' max_trained_time) lives only in the
        # workers under fork; reduce it back so the parent model leaves
        # training exactly as a serial run would.
        self._model.merge_aux_state([aux for _, _, aux, _ in results])
        if len(results) > 1:
            scale = float(len(results))
            summed = {name: grad / scale for name, grad in summed.items()}
        return losses, summed

    def close(self) -> None:
        """Release the worker pool (idempotent)."""
        self._pool.close()

    def __enter__(self) -> "GradientShardRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def accumulation_groups(num_batches: int,
                        grad_accum: int) -> List[List[int]]:
    """Partition ``range(num_batches)`` into consecutive step groups.

    The last group may be short; each group becomes one optimizer step.
    """
    if grad_accum < 1:
        raise ValueError(f"grad_accum must be >= 1, got {grad_accum}")
    return [list(range(start, min(start + grad_accum, num_batches)))
            for start in range(0, num_batches, grad_accum)]
