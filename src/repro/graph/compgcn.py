"""CompGCN-style aggregator (Vashishth et al., ICLR 2020) — Table V variant.

CompGCN composes the source entity with the relation via an explicit
composition operator before the linear transform.  Two compositions from
the paper's Table V are supported:

* ``sub``  — :math:`\\phi(h_s, r) = h_s - r` (TransE-style subtraction)
* ``mult`` — :math:`\\phi(h_s, r) = h_s \\odot r` (DistMult-style product)
"""

from __future__ import annotations

import numpy as np

from ..nn import Module, Parameter, Tensor
from ..nn import init as weight_init
from ..nn.ops import dropout, fused_relational_pass, index_select, rrelu
from ..perf import FLAGS
from .base import RelationalGraphLayer

_COMPOSITIONS = ("sub", "mult")


class CompGCNLayer(RelationalGraphLayer):
    """One CompGCN message-passing round with a chosen composition.

    evolve_relations: bool
        When True the layer also carries a ``w_rel`` matrix used by the
        stack to evolve relation embeddings between rounds; the last layer
        of a stack omits it (its update would be discarded).
    """

    def __init__(self, dim: int, rng: np.random.Generator,
                 composition: str = "sub", dropout_rate: float = 0.2,
                 evolve_relations: bool = False):
        super().__init__()
        if composition not in _COMPOSITIONS:
            raise ValueError(f"composition must be one of {_COMPOSITIONS}, "
                             f"got {composition!r}")
        self.composition = composition
        self.w_message = Parameter(weight_init.xavier_uniform((dim, dim), rng))
        self.w_self = Parameter(weight_init.xavier_uniform((dim, dim), rng))
        self.w_rel = (Parameter(weight_init.xavier_uniform((dim, dim), rng))
                      if evolve_relations else None)
        self.dropout_rate = dropout_rate
        self._rng = rng

    def forward(self, h: Tensor, r: Tensor, src: np.ndarray,
                rel: np.ndarray, dst: np.ndarray) -> Tensor:
        num_nodes = h.shape[0]
        if FLAGS.fused_kernels:
            return fused_relational_pass(
                h, r, self.w_message, self.w_self, src, rel, dst, num_nodes,
                composition=self.composition, activation=True,
                training=self.training, dropout_rate=self.dropout_rate,
                rng=self._rng)
        h_src = index_select(h, src)
        r_edge = index_select(r, rel)
        if self.composition == "sub":
            composed = h_src - r_edge
        else:
            composed = h_src * r_edge
        aggregated = self.aggregate_mean(composed @ self.w_message, dst, num_nodes)
        out = aggregated + h @ self.w_self
        out = rrelu(out, training=self.training, rng=self._rng)
        return dropout(out, self.dropout_rate, self.training, self._rng)

    def update_relations(self, r: Tensor) -> Tensor:
        """CompGCN also evolves relation embeddings through W_rel."""
        return r @ self.w_rel


class CompGCN(Module):
    """Stack of CompGCN layers; relations are co-evolved across layers."""

    def __init__(self, dim: int, num_layers: int, rng: np.random.Generator,
                 composition: str = "sub", dropout_rate: float = 0.2):
        super().__init__()
        if num_layers < 1:
            raise ValueError("need at least one layer")
        self.layers = [
            CompGCNLayer(dim, rng, composition, dropout_rate,
                         evolve_relations=(i < num_layers - 1))
            for i in range(num_layers)]

    def forward(self, h: Tensor, r: Tensor, src: np.ndarray,
                rel: np.ndarray, dst: np.ndarray) -> Tensor:
        for i, layer in enumerate(self.layers):
            h = layer(h, r, src, rel, dst)
            if i < len(self.layers) - 1:  # last update would be discarded
                r = layer.update_relations(r)
        return h
