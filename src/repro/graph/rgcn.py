"""The paper's R-GCN aggregator (Eq. 4 / Eq. 12).

This is the RE-GCN-style variant of R-GCN used by LogCL: instead of one
weight matrix per relation (the original Schlichtkrull formulation, which
is parameter-hungry), the relation embedding is *added* to the source
entity embedding and a single shared matrix transforms the message:

.. math::
    h_o^{(l+1)} = \\sigma_1\\Big(\\frac{1}{c_o}
        \\sum_{(e_s, r)} W_1^{(l)} (h_s^{(l)} + r) + W_2^{(l)} h_o^{(l)}\\Big)

with :math:`\\sigma_1` = RReLU and :math:`c_o` the in-degree of ``o``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Module, Parameter, Tensor
from ..nn import init as weight_init
from ..nn.ops import dropout, index_select, rrelu
from .base import RelationalGraphLayer


class RGCNLayer(RelationalGraphLayer):
    """One message-passing round of the paper's R-GCN (Eq. 4)."""

    def __init__(self, dim: int, rng: np.random.Generator,
                 dropout_rate: float = 0.2, activation: bool = True):
        super().__init__()
        self.dim = dim
        self.w_message = Parameter(weight_init.xavier_uniform((dim, dim), rng))
        self.w_self = Parameter(weight_init.xavier_uniform((dim, dim), rng))
        self.dropout_rate = dropout_rate
        self.activation = activation
        self._rng = rng

    def forward(self, h: Tensor, r: Tensor, src: np.ndarray,
                rel: np.ndarray, dst: np.ndarray) -> Tensor:
        num_nodes = h.shape[0]
        messages = (index_select(h, src) + index_select(r, rel)) @ self.w_message
        aggregated = self.aggregate_mean(messages, dst, num_nodes)
        out = aggregated + h @ self.w_self
        if self.activation:
            out = rrelu(out, training=self.training, rng=self._rng)
        return dropout(out, self.dropout_rate, self.training, self._rng)


class RGCN(Module):
    """A stack of :class:`RGCNLayer` rounds (the paper uses 2 layers)."""

    def __init__(self, dim: int, num_layers: int, rng: np.random.Generator,
                 dropout_rate: float = 0.2):
        super().__init__()
        if num_layers < 1:
            raise ValueError("need at least one layer")
        self.layers = [RGCNLayer(dim, rng, dropout_rate) for _ in range(num_layers)]

    def forward(self, h: Tensor, r: Tensor, src: np.ndarray,
                rel: np.ndarray, dst: np.ndarray) -> Tensor:
        for layer in self.layers:
            h = layer(h, r, src, rel, dst)
        return h
