"""Shared interfaces and helpers for relational graph layers.

All layers operate on *edge arrays* — aligned int vectors ``src``,
``rel``, ``dst`` — and full node/relation embedding matrices, mirroring
the way DGL kernels consume a graph.  Aggregation is in-degree-normalized
sum (the paper's ``1/c_o`` in Eq. 4).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Module, Tensor
from ..nn.ops import degree_norm, index_select, segment_sum


def in_degree_norm(dst: np.ndarray, num_nodes: int,
                   dtype=np.float32) -> np.ndarray:
    """Per-destination 1/in-degree normalizer (1 for isolated nodes).

    Delegates to :func:`repro.nn.ops.degree_norm` so repeated layers and
    epochs over the same snapshot reuse the memoized bincount instead of
    rescanning the edge array (``FLAGS.degree_cache``).
    """
    return degree_norm(dst, num_nodes, dtype)


class RelationalGraphLayer(Module):
    """Base class: one round of relation-aware message passing.

    Subclasses implement :meth:`forward(h, r, src, rel, dst)` returning
    updated node embeddings of the same shape as ``h``.
    """

    def forward(self, h: Tensor, r: Tensor, src: np.ndarray,
                rel: np.ndarray, dst: np.ndarray) -> Tensor:  # pragma: no cover
        raise NotImplementedError

    @staticmethod
    def aggregate_mean(messages: Tensor, dst: np.ndarray,
                       num_nodes: int) -> Tensor:
        """In-degree-normalized sum of ``messages`` onto destinations."""
        summed = segment_sum(messages, dst, num_nodes)
        norm = in_degree_norm(dst, num_nodes, dtype=messages.data.dtype)
        return summed * Tensor(norm[:, None])


def gather(h: Tensor, index: np.ndarray) -> Tensor:
    """Row-gather shorthand used across the layers."""
    return index_select(h, index)
