"""``repro.graph`` — relational graph neural network aggregators.

Three interchangeable encoders back the paper's Table V study: the default
R-GCN (Eq. 4/12), CompGCN with ``sub``/``mult`` composition, and the
attention-based KBGAT.  :func:`build_aggregator` constructs one by name.
"""

from __future__ import annotations

import numpy as np

from ..nn import Module
from .base import RelationalGraphLayer, in_degree_norm
from .compgcn import CompGCN, CompGCNLayer
from .kbgat import KBGAT, KBGATLayer
from .rgcn import RGCN, RGCNLayer

AGGREGATORS = ("rgcn", "compgcn-sub", "compgcn-mult", "kbgat")


def build_aggregator(kind: str, dim: int, num_layers: int,
                     rng: np.random.Generator,
                     dropout_rate: float = 0.2) -> Module:
    """Construct a graph aggregator by name (see :data:`AGGREGATORS`)."""
    if kind == "rgcn":
        return RGCN(dim, num_layers, rng, dropout_rate)
    if kind == "compgcn-sub":
        return CompGCN(dim, num_layers, rng, "sub", dropout_rate)
    if kind == "compgcn-mult":
        return CompGCN(dim, num_layers, rng, "mult", dropout_rate)
    if kind == "kbgat":
        return KBGAT(dim, num_layers, rng, dropout_rate)
    raise ValueError(f"unknown aggregator {kind!r}; choose from {AGGREGATORS}")


__all__ = [
    "AGGREGATORS", "build_aggregator", "in_degree_norm",
    "RelationalGraphLayer",
    "RGCN", "RGCNLayer",
    "CompGCN", "CompGCNLayer",
    "KBGAT", "KBGATLayer",
]
