"""KBGAT-style attention aggregator (Nathani et al., ACL 2019) — Table V.

Each edge (s, r, o) produces a message from the concatenated triple
features; attention logits are normalized per destination node with an
edge softmax, so influential neighbours dominate the aggregation.
"""

from __future__ import annotations

import numpy as np

from ..nn import Module, Parameter, Tensor
from ..nn import init as weight_init
from ..nn.ops import concat, dropout, index_select, rrelu, segment_softmax
from .base import RelationalGraphLayer


class KBGATLayer(RelationalGraphLayer):
    """One graph-attention round over relational triples."""

    def __init__(self, dim: int, rng: np.random.Generator,
                 dropout_rate: float = 0.2, leaky_slope: float = 0.2):
        super().__init__()
        self.w_triple = Parameter(weight_init.xavier_uniform((3 * dim, dim), rng))
        self.attn = Parameter(weight_init.xavier_uniform((dim, 1), rng))
        self.w_self = Parameter(weight_init.xavier_uniform((dim, dim), rng))
        self.dropout_rate = dropout_rate
        self.leaky_slope = leaky_slope
        self._rng = rng

    def forward(self, h: Tensor, r: Tensor, src: np.ndarray,
                rel: np.ndarray, dst: np.ndarray) -> Tensor:
        num_nodes = h.shape[0]
        triple = concat([index_select(h, src), index_select(r, rel),
                         index_select(h, dst)], axis=-1)
        messages = triple @ self.w_triple                       # (E, d)
        logits = (messages @ self.attn).reshape(-1)             # (E,)
        logits = logits.leaky_relu(self.leaky_slope)
        alpha = segment_softmax(logits, dst, num_nodes)         # (E,)
        weighted = messages * alpha.reshape(-1, 1)
        from ..nn.ops import segment_sum
        aggregated = segment_sum(weighted, dst, num_nodes)
        out = aggregated + h @ self.w_self
        out = rrelu(out, training=self.training, rng=self._rng)
        return dropout(out, self.dropout_rate, self.training, self._rng)


class KBGAT(Module):
    """Stack of KBGAT attention layers."""

    def __init__(self, dim: int, num_layers: int, rng: np.random.Generator,
                 dropout_rate: float = 0.2):
        super().__init__()
        if num_layers < 1:
            raise ValueError("need at least one layer")
        self.layers = [KBGATLayer(dim, rng, dropout_rate)
                       for _ in range(num_layers)]

    def forward(self, h: Tensor, r: Tensor, src: np.ndarray,
                rel: np.ndarray, dst: np.ndarray) -> Tensor:
        for layer in self.layers:
            h = layer(h, r, src, rel, dst)
        return h
