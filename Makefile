# Convenience targets for the LogCL reproduction.

.PHONY: install test test-fast bench bench-table3 experiments clean-cache lint

install:
	pip install -e .

test:
	pytest tests/

test-fast:  ## unit tests only (skips the slower end-to-end training tests)
	pytest tests/ --ignore=tests/integration

bench:  ## regenerate every paper table/figure (cached under benchmarks/.cache)
	pytest benchmarks/ --benchmark-only -s

bench-table3:
	pytest benchmarks/test_table3_main_results.py --benchmark-only -s

experiments:  ## rebuild EXPERIMENTS.md from benchmarks/results/
	python benchmarks/aggregate_results.py

clean-cache:  ## force full retraining of all benchmark models
	rm -rf benchmarks/.cache benchmarks/results

lint:
	python -m pyflakes src/repro || true
