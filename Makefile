# Convenience targets for the LogCL reproduction.

.PHONY: install test test-fast bench bench-table3 serve-bench \
	serve-daemon-bench serve-replica-bench eval-bench history-bench \
	train-telemetry-bench parallel-bench data-bench perf-bench \
	anomaly-bench trace-demo experiments clean-cache docs-test lint \
	lint-private lint-docstrings lint-dtype docs-linkcheck

install:
	pip install -e .

test:  ## tier-1 suite (includes tests/docs — every doc snippet executes)
	pytest tests/

test-fast:  ## quick signal: nn + serving units and the examples smoke test
	pytest tests/nn tests/serving tests/integration/test_examples.py

bench:  ## regenerate every paper table/figure (cached under benchmarks/.cache)
	pytest benchmarks/ --benchmark-only -s

bench-table3:
	pytest benchmarks/test_table3_main_results.py --benchmark-only -s

serve-bench:  ## serving latency: cached incremental inference vs cold recompute
	pytest benchmarks/test_serving_latency.py --benchmark-only -s

serve-daemon-bench:  ## daemon under 8 open-loop clients: QPS, p50/p99, shedding
	pytest benchmarks/test_serving_daemon.py --benchmark-only -s

serve-replica-bench:  ## replica-set router at 1/2/4 replicas: QPS, p50/p99, shared-store proof
	pytest benchmarks/test_serving_replicas.py --benchmark-only -s

eval-bench:  ## filtered-ranking throughput: batched kernel vs per-query path
	pytest benchmarks/test_eval_throughput.py --benchmark-only -s

history-bench:  ## history layer: subgraph-cache hit rate + epoch-rewind speedup
	pytest benchmarks/test_history_cache.py --benchmark-only -s

train-telemetry-bench:  ## telemetry overhead (<5%) and span coverage (>=95%)
	pytest benchmarks/test_train_telemetry.py --benchmark-only -s

parallel-bench:  ## sharded-evaluation parity (always) + speedup (>=4 cores)
	pytest benchmarks/test_parallel_eval.py --benchmark-only -s

data-bench:  ## store-file capacity: ingest facts/s, bytes/fact, eval QPS
	pytest benchmarks/test_data_capacity.py --benchmark-only -s

perf-bench:  ## speed pass: >=3x train/eval vs the float64 seed path + parity
	pytest benchmarks/test_perf_pass.py -s

anomaly-bench:  ## calibrated score op as anomaly detector: ROC-AUC >= 0.85
	pytest benchmarks/test_anomaly_roc.py --benchmark-only -s

docs-test:  ## executable docs: every fenced python block + every example script
	PYTHONPATH=src python tools/run_doc_snippets.py
	PYTHONPATH=src python examples/quickstart.py --epochs 1 --dim 16
	PYTHONPATH=src python examples/dataset_analysis.py
	PYTHONPATH=src python examples/custom_dataset.py --epochs 1
	PYTHONPATH=src python examples/attention_inspection.py --epochs 1
	PYTHONPATH=src python examples/event_forecasting.py --epochs 1 --num-queries 2
	PYTHONPATH=src python examples/noise_robustness.py --epochs 1 --sigmas 0 0.5
	PYTHONPATH=src python examples/online_learning.py --epochs 1 --models regcn logcl

trace-demo:  ## train two quick epochs with --trace and show the JSONL events
	PYTHONPATH=src python -m repro train --model logcl --dataset tiny \
		--dim 16 --epochs 2 --eval-every 1 --quiet \
		--trace trace_demo.jsonl
	@echo "--- first trace events ---"
	@head -n 8 trace_demo.jsonl
	@echo "... ($$(wc -l < trace_demo.jsonl) events in trace_demo.jsonl)"

experiments:  ## rebuild EXPERIMENTS.md from benchmarks/results/
	python benchmarks/aggregate_results.py

clean-cache:  ## force full retraining of all benchmark models
	rm -rf benchmarks/.cache benchmarks/results

lint: lint-private lint-docstrings lint-dtype docs-linkcheck
	python -m pyflakes src/repro || true

docs-linkcheck:  ## no dead relative links in README.md / docs/*.md
	python tools/check_links.py

lint-dtype:  ## float32 policy: wide floats only via repro/nn/dtypes.py
	@! grep -rnE 'np\.float64|astype\(float\)' \
		src/repro/nn src/repro/graph src/repro/core \
		--include='*.py' \
		| grep -v 'src/repro/nn/dtypes.py' \
		|| { echo 'hard-coded wide float in the numeric core (use'\
		' repro.nn.dtypes.default_float / WIDE_FLOAT so the dtype'\
		' policy stays in one place)'; \
		exit 1; }

lint-docstrings:  ## every public def/class in history, parallel, serving documented
	python tools/check_docstrings.py

lint-private:  ## no reaching into GlobalHistoryIndex internals from outside
	@! grep -rnE '\._(facts|buffer|cursor|answers|facts_of_entity)\b' \
		src tests benchmarks examples \
		--include='*.py' \
		--exclude=subgraph.py \
		| grep -v 'self\._' \
		|| { echo 'private GlobalHistoryIndex attribute accessed outside'\
		' repro/core/subgraph.py (use facts_since / the public API)'; \
		exit 1; }
	@! grep -rnE 'self\._(subgraph_cache|context_cache|snap_by_time|snap_times|snapshots)\s*[:=][^=]' \
		src tests benchmarks examples \
		--include='*.py' \
		| grep -v 'src/repro/history/' \
		|| { echo 'private snapshot/subgraph cache declared outside'\
		' repro/history (use HistoryStore / ContextCache)'; \
		exit 1; }
	@! grep -rnE '(np|numpy)\.memmap\(' \
		src tests benchmarks examples \
		--include='*.py' \
		| grep -v 'src/repro/data/storefile.py' \
		|| { echo 'raw np.memmap constructed outside'\
		' repro/data/storefile.py (use repro.data.open_store /'\
		' map_columns so headers are validated)'; \
		exit 1; }
	@! grep -rnE '\._engine\b' \
		src tests benchmarks examples \
		--include='*.py' \
		| grep -v 'src/repro/serving/daemon.py' \
		| grep -v 'src/repro/serving/replica.py' \
		| grep -v 'self\._engine' \
		|| { echo 'daemon-owned engine accessed outside its serialized'\
		' executor (pass a callable to EngineExecutor.run so every'\
		' engine touch stays on the single worker thread; replicas own'\
		' theirs inside repro/serving/replica.py)'; \
		exit 1; }
	@! grep -rnE '\._(read_state|delta)\b' \
		src tests benchmarks examples \
		--include='*.py' \
		| grep -v 'src/repro/serving/engine.py' \
		| grep -v 'self\._' \
		|| { echo 'engine read/write-split internals accessed outside'\
		' repro/serving/engine.py (use engine.read_state() for the'\
		' shareable half and the public advance/restore surface for'\
		' the mutable half)'; \
		exit 1; }
