# Convenience targets for the LogCL reproduction.

.PHONY: install test test-fast bench bench-table3 serve-bench eval-bench \
	experiments clean-cache lint

install:
	pip install -e .

test:
	pytest tests/

test-fast:  ## quick signal: nn + serving units and the examples smoke test
	pytest tests/nn tests/serving tests/integration/test_examples.py

bench:  ## regenerate every paper table/figure (cached under benchmarks/.cache)
	pytest benchmarks/ --benchmark-only -s

bench-table3:
	pytest benchmarks/test_table3_main_results.py --benchmark-only -s

serve-bench:  ## serving latency: cached incremental inference vs cold recompute
	pytest benchmarks/test_serving_latency.py --benchmark-only -s

eval-bench:  ## filtered-ranking throughput: batched kernel vs per-query path
	pytest benchmarks/test_eval_throughput.py --benchmark-only -s

experiments:  ## rebuild EXPERIMENTS.md from benchmarks/results/
	python benchmarks/aggregate_results.py

clean-cache:  ## force full retraining of all benchmark models
	rm -rf benchmarks/.cache benchmarks/results

lint:
	python -m pyflakes src/repro || true
