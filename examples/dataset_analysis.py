#!/usr/bin/env python
"""Dataset analysis: statistics, reference heuristics, pattern breakdown.

A no-training tour of the analysis tooling:

1. Table II-style statistics with temporal diagnostics for each preset;
2. the frequency / recency reference scorers (the ceilings for static
   memorization and naive recency — any temporal model should beat them
   on structure-bearing patterns);
3. a per-pattern breakdown of the recency heuristic, showing which
   generative patterns it can and cannot resolve.

Runs in well under a minute; useful as a first look at any new dataset.

Usage::

    python examples/dataset_analysis.py [--preset icews14_like]
"""

import argparse

from repro.analysis import (compute_statistics, format_pattern_table,
                            format_statistics_table, per_pattern_metrics)
from repro.datasets import load_preset, preset_names
from repro.eval import (FrequencyHeuristic, RecencyHeuristic, evaluate,
                        format_metric_row)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", default="tiny", choices=preset_names())
    args = parser.parse_args()

    dataset = load_preset(args.preset)

    print("Dataset statistics (Table II layout + temporal diagnostics):")
    for line in format_statistics_table([compute_statistics(dataset)]):
        print("  " + line)
    print()

    print("Reference heuristics on the test split (time-aware filtered):")
    records = {}
    for name, heuristic in (("frequency", FrequencyHeuristic(dataset.num_entities)),
                            ("recency", RecencyHeuristic(dataset.num_entities))):
        recs = []
        metrics = evaluate(heuristic, dataset, "test", window=3, records=recs)
        records[name] = recs
        print("  " + format_metric_row(f"{name}-heuristic", metrics))
    print()

    print("Recency heuristic per generative pattern:")
    breakdown = per_pattern_metrics(records["recency"], dataset)
    for line in format_pattern_table(breakdown, title=""):
        if line:
            print("  " + line)
    print()
    print("Reading: recency resolves `markov` (persistent answers) but is")
    print("capped on `drift` (the answer is the *successor* of the last")
    print("observation), `periodic` (phase), and `transfer` (announced by")
    print("a different relation) — the headroom temporal models exploit.")


if __name__ == "__main__":
    main()
