#!/usr/bin/env python
"""Custom dataset: bring your own quadruple files and compare models.

Demonstrates the IO layer end-to-end with the RE-GCN-compatible on-disk
format (``train.txt`` / ``valid.txt`` / ``test.txt`` / ``stat.txt`` with
tab-separated ``subject relation object time`` ids) — the same format the
public ICEWS14/18/05-15 and GDELT dumps ship in, so pointing
``load_benchmark_directory`` at a real download reproduces the paper on
genuine data.

Here we write a synthetic preset to disk, load it back, and run a small
model comparison — the typical workflow for a user evaluating LogCL on
their own event data.

Usage::

    python examples/custom_dataset.py [--epochs 8]
"""

import argparse
import tempfile

from repro import TrainConfig, Trainer
from repro.datasets import load_preset
from repro.eval import format_metric_row
from repro.registry import build_model
from repro.tkg import load_benchmark_directory, save_benchmark_directory


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--models", nargs="+",
                        default=["distmult", "cygnet", "regcn", "logcl"])
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        directory = f"{tmp}/my_tkg"
        print(f"Writing an example dataset to {directory} ...")
        save_benchmark_directory(load_preset("tiny"), directory)

        # This is the entry point you would use with real ICEWS files.
        dataset = load_benchmark_directory(directory)
        print(f"Loaded {dataset.name!r}: {dataset.num_entities} entities, "
              f"{dataset.num_relations} relations, "
              f"{len(dataset.train)} training facts\n")

        rows = []
        for name in args.models:
            model = build_model(name, dataset, dim=32)
            trainer = Trainer(TrainConfig(epochs=args.epochs, lr=2e-3,
                                          eval_every=2, window=3))
            result = trainer.fit(model, dataset)
            metrics = trainer.test(model, dataset)
            rows.append((name, metrics))
            print(f"  trained {name:12s} ({result.epochs_run} epochs, "
                  f"{result.seconds:.0f}s)")

        print("\nTest metrics (time-aware filtered):")
        for name, metrics in sorted(rows, key=lambda kv: -kv[1]["mrr"]):
            print("  " + format_metric_row(name, metrics))


if __name__ == "__main__":
    main()
