#!/usr/bin/env python
"""Event forecasting: inspect LogCL's top-k predictions for named queries.

This mirrors the paper's Table VI case study on a synthetic political
event stream: after training, we ask the model questions like
"(entity_17, relation_3, ?, t)" and print the top-5 candidate entities
with probabilities, alongside which candidates actually occurred.

It also demonstrates the library's vocabulary layer — predictions are
shown with human-readable names rather than ids.

Usage::

    python examples/event_forecasting.py [--epochs 10]
"""

import argparse

import numpy as np

from repro import LogCL, LogCLConfig, TrainConfig, Trainer
from repro.datasets import load_preset
from repro.training import HistoryContext, iter_timestep_batches


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--num-queries", type=int, default=5)
    args = parser.parse_args()

    dataset = load_preset("tiny")
    model = LogCL(LogCLConfig(dim=32, window=3, seed=0),
                  dataset.num_entities, dataset.num_relations)
    trainer = Trainer(TrainConfig(epochs=args.epochs, lr=2e-3, eval_every=2,
                                  window=3))
    print("Training LogCL ...")
    trainer.fit(model, dataset)
    model.eval()

    # Walk to the first test timestamp and take a few real test queries.
    context = HistoryContext(dataset, window=3)
    context.reset()
    batch = next(iter_timestep_batches(dataset, "test", context,
                                       phases=("forward",)))
    entities = dataset.entity_vocab
    relations = dataset.relation_vocab

    print(f"\nForecasting events at timestamp {batch.time} "
          f"(top-5 candidates per query):\n")
    shown = 0
    seen = set()
    for s, r, o in zip(batch.subjects, batch.relations, batch.objects):
        if (int(s), int(r)) in seen:
            continue
        seen.add((int(s), int(r)))
        top = model.predict_topk(batch.snapshots, batch.time, int(s), int(r),
                                 batch.global_edges, k=5)
        answers = {int(obj) for subj, rel, obj in
                   zip(batch.subjects, batch.relations, batch.objects)
                   if int(subj) == int(s) and int(rel) == int(r)}
        print(f"query ({entities.name_of(int(s))}, "
              f"{relations.name_of(int(r))}, ?, t={batch.time})")
        for entity_id, prob in top:
            marker = "  <-- occurred" if entity_id in answers else ""
            print(f"    {entities.name_of(entity_id):12s} {prob:6.3f}{marker}")
        hit = any(e in answers for e, _ in top)
        print(f"    answer in top-5: {hit}\n")
        shown += 1
        if shown >= args.num_queries:
            break


if __name__ == "__main__":
    main()
