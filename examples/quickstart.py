#!/usr/bin/env python
"""Quickstart: train LogCL on a small synthetic TKG and evaluate it.

Runs in about two minutes on a laptop CPU.  Shows the core workflow:

1. load a benchmark preset (a synthetic ICEWS-style event stream),
2. build a LogCL model from a config,
3. fit with the offline trainer (two-phase propagation, early stopping),
4. report test MRR / Hits@k under the time-aware filtered protocol,
5. save and reload a checkpoint.

Usage::

    python examples/quickstart.py [--preset tiny] [--epochs 10]
"""

import argparse
import tempfile

from repro import LogCL, LogCLConfig, TrainConfig, Trainer
from repro.datasets import load_preset
from repro.eval import format_metric_row
from repro.training import load_checkpoint, save_checkpoint


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", default="tiny",
                        help="dataset preset (tiny, icews14_like, ...)")
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--window", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"Loading preset {args.preset!r} ...")
    dataset = load_preset(args.preset)
    print(f"  {dataset.num_entities} entities, {dataset.num_relations} "
          f"relations, {dataset.num_timestamps} timestamps")
    print(f"  train/valid/test = {len(dataset.train)}/{len(dataset.valid)}"
          f"/{len(dataset.test)} facts")

    config = LogCLConfig(dim=args.dim, window=args.window, seed=args.seed)
    model = LogCL(config, dataset.num_entities, dataset.num_relations)
    print(f"LogCL with {model.num_parameters():,} parameters")

    trainer = Trainer(TrainConfig(epochs=args.epochs, lr=2e-3, eval_every=2,
                                  window=args.window, verbose=True))
    result = trainer.fit(model, dataset)
    print(f"Training finished in {result.seconds:.0f}s "
          f"({result.epochs_run} epochs, best valid MRR "
          f"{result.best_valid_mrr:.2f})")

    metrics = trainer.test(model, dataset)
    print()
    print("Test metrics (time-aware filtered):")
    print("  " + format_metric_row("LogCL", metrics))

    with tempfile.TemporaryDirectory() as tmp:
        path = f"{tmp}/logcl"
        save_checkpoint(model, path, metadata={"preset": args.preset})
        fresh = LogCL(config, dataset.num_entities, dataset.num_relations)
        meta = load_checkpoint(fresh, path)
        check = trainer.test(fresh, dataset)
        print(f"Reloaded checkpoint (metadata={meta}); "
              f"test MRR {check['mrr']:.2f} — matches: "
              f"{abs(check['mrr'] - metrics['mrr']) < 1e-9}")


if __name__ == "__main__":
    main()
