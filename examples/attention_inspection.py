#!/usr/bin/env python
"""Attention inspection: where does LogCL look in the local window?

Trains a small LogCL, then prints the entity-aware attention
distribution over the local snapshot window for real test queries —
the measurable version of the paper's Fig. 1 story (the informative
snapshot is not always the most recent one).

Also reports the average attention entropy: low entropy means the
model actively filters snapshots instead of treating them uniformly.

Usage::

    python examples/attention_inspection.py [--epochs 8]
"""

import argparse

import numpy as np

from repro import LogCL, LogCLConfig, TrainConfig, Trainer
from repro.analysis import (attention_entropy, format_attention_report,
                            snapshot_attention)
from repro.datasets import load_preset
from repro.training import HistoryContext, iter_timestep_batches


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--window", type=int, default=4)
    args = parser.parse_args()

    dataset = load_preset("tiny")
    model = LogCL(LogCLConfig(dim=32, window=args.window, seed=0,
                              temperature=0.1),
                  dataset.num_entities, dataset.num_relations)
    print("Training LogCL ...")
    Trainer(TrainConfig(epochs=args.epochs, lr=2e-3, eval_every=2,
                        window=args.window)).fit(model, dataset)
    model.eval()

    context = HistoryContext(dataset, window=args.window)
    context.reset()
    batch = next(iter_timestep_batches(dataset, "test", context,
                                       phases=("forward",)))
    weights = snapshot_attention(model, batch)

    print(f"\nSnapshot attention at t={batch.time} "
          f"(window of {len(batch.snapshots)} snapshots):\n")
    for line in format_attention_report(weights, max_rows=8):
        print("  " + line)

    entropies = attention_entropy(weights)
    mean_entropy = float(np.mean(list(entropies.values())))
    uniform = np.log(max(len(batch.snapshots), 1))
    print(f"\nmean attention entropy {mean_entropy:.3f} "
          f"(uniform would be {uniform:.3f})")
    if mean_entropy < 0.95 * uniform:
        print("-> the model concentrates on a subset of snapshots "
              "(entity-aware filtering at work)")
    else:
        print("-> near-uniform attention on this batch")


if __name__ == "__main__":
    main()
