#!/usr/bin/env python
"""Online learning: adapt to emerging facts during the test period.

Reproduces the paper's §IV-H protocol (Fig. 10) in miniature: a model is
first trained offline, then the test period is replayed timestamp by
timestamp — predict the queries at ``t``, then fine-tune on the revealed
facts of ``t`` before moving on.  Online results should beat the offline
ones because historical facts in the test period update the model.

Usage::

    python examples/online_learning.py [--epochs 8]
"""

import argparse

from repro import OnlineConfig, TrainConfig, Trainer, evaluate_online
from repro.datasets import load_preset
from repro.registry import build_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--models", nargs="+", default=["regcn", "logcl"])
    args = parser.parse_args()

    dataset = load_preset("tiny")
    print(f"Dataset: {dataset.name}, test period = "
          f"{dataset.test.timestamps().min()}..{dataset.test.timestamps().max()}\n")

    for name in args.models:
        model = build_model(name, dataset, dim=32)
        trainer = Trainer(TrainConfig(epochs=args.epochs, lr=2e-3,
                                      eval_every=2, window=3))
        trainer.fit(model, dataset)
        offline = trainer.test(model, dataset)
        online = evaluate_online(model, dataset,
                                 OnlineConfig(window=3, lr=1e-3))
        delta = online["mrr"] - offline["mrr"]
        print(f"{name:10s} offline MRR {offline['mrr']:6.2f}  "
              f"online MRR {online['mrr']:6.2f}  (delta {delta:+.2f})")


if __name__ == "__main__":
    main()
