#!/usr/bin/env python
"""Noise robustness: reproduce the paper's Fig. 2/5 protocol in miniature.

Trains LogCL and its no-contrastive-learning ablation (LogCL-w/o-cl) on
the same data, then evaluates both under increasing Gaussian perturbation
of the input entity embeddings.  The contrastive model should degrade
more gracefully — that is the paper's second headline claim.

Usage::

    python examples/noise_robustness.py [--epochs 10]
"""

import argparse

from repro import LogCL, LogCLConfig, TrainConfig, Trainer
from repro.datasets import load_preset
from repro.robustness import noise_sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--sigmas", type=float, nargs="+",
                        default=[0.0, 0.5, 1.0, 2.0])
    args = parser.parse_args()

    dataset = load_preset("tiny")
    trainer = Trainer(TrainConfig(epochs=args.epochs, lr=2e-3, eval_every=2,
                                  window=3))

    sweeps = {}
    for label, use_cl in (("LogCL", True), ("LogCL-w/o-cl", False)):
        print(f"Training {label} ...")
        model = LogCL(LogCLConfig(dim=32, window=3, seed=0,
                                  use_contrast=use_cl),
                      dataset.num_entities, dataset.num_relations)
        trainer.fit(model, dataset)
        sweeps[label] = noise_sweep(model, dataset, sigmas=tuple(args.sigmas),
                                    window=3, model_name=label)

    print("\nMRR under Gaussian input noise (test split):")
    header = "sigma".ljust(8) + "".join(f"{name:>16s}" for name in sweeps)
    print(header)
    for i, sigma in enumerate(args.sigmas):
        row = f"{sigma:<8.2f}"
        for sweep in sweeps.values():
            row += f"{sweep.points[i].mrr:16.2f}"
        print(row)

    print("\nRelative MRR drop at the strongest noise:")
    for name, sweep in sweeps.items():
        drop = sweep.degradation_percent(args.sigmas[-1])
        print(f"  {name:16s} -{drop:.1f}%")
    logcl_drop = sweeps["LogCL"].degradation_percent(args.sigmas[-1])
    ablation_drop = sweeps["LogCL-w/o-cl"].degradation_percent(args.sigmas[-1])
    verdict = "holds" if logcl_drop <= ablation_drop else "does NOT hold"
    print(f"\nPaper's robustness claim (contrast degrades less): {verdict}")


if __name__ == "__main__":
    main()
