"""Setup shim for environments without the `wheel` package.

The canonical metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works with the legacy (non-PEP-660) editable path on
offline machines where ``wheel`` is unavailable.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "LogCL: Local-Global History-Aware Contrastive Learning for "
        "Temporal Knowledge Graph Reasoning (ICDE 2024) reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.22"],
)
