#!/usr/bin/env python
"""Execute every fenced ``python`` block in the project docs.

Documentation drifts the moment nobody runs it.  This harness extracts
each fenced ```python block from ``README.md`` and ``docs/*.md`` and
``exec``s it, so a renamed function or changed signature in a doc
snippet fails CI exactly like a broken test.

Execution model
---------------
* All blocks of one file share a single namespace and run in order, so
  a snippet may use names an earlier snippet in the same file defined
  (the docs read top-to-bottom the same way).
* Each file runs inside a fresh temporary directory; snippets may write
  checkpoints or traces without littering the repo.
* Some snippets reference artifacts a reader would already have (a
  trained ``logcl.npz``, an ICEWS-style benchmark directory, incoming
  fact arrays).  A small per-file *bootstrap* materializes those under
  the documented names before the blocks run — see ``BOOTSTRAPS``.
* By default the harness applies "fast" clamps so the whole doc set
  runs in test time: every dataset preset resolves to the minutes-scale
  ``tiny`` preset and training is capped at one epoch.  ``--full``
  removes the clamps and runs the snippets verbatim.

Run directly (``python tools/run_doc_snippets.py``) or through pytest
(``tests/docs/test_snippets.py``), which shells out here once per doc
file so snippet side effects (registry entries, patched presets) stay
in a subprocess.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
import traceback
from typing import Callable, Dict, List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


# -- snippet extraction -------------------------------------------------------

def extract_blocks(path: str) -> List[Tuple[int, str]]:
    """Fenced ```python blocks of a markdown file as (start_line, code)."""
    blocks: List[Tuple[int, str]] = []
    lines = open(path, encoding="utf-8").read().splitlines()
    collecting: Optional[List[str]] = None
    start = 0
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if collecting is None:
            if stripped.startswith("```python"):
                collecting, start = [], number + 1
        elif stripped.startswith("```"):
            blocks.append((start, "\n".join(collecting)))
            collecting = None
        else:
            collecting.append(line)
    if collecting is not None:
        raise ValueError(f"{path}: unterminated ```python fence")
    return blocks


# -- fast-mode clamps ---------------------------------------------------------

def apply_fast_clamps() -> None:
    """Make every documented run finish in test time.

    * ``load_preset`` resolves every known preset name to ``tiny`` (the
      docs name the ICEWS-scale presets; the API surface exercised is
      identical).
    * ``Trainer`` clamps its config to one epoch.
    """
    import dataclasses

    import repro.datasets as datasets_pkg
    from repro.datasets import presets
    from repro.training.trainer import Trainer

    def fast_load_preset(name, seed=None):
        if name not in presets.PRESETS:
            raise KeyError(f"unknown preset {name!r}; "
                           f"available: {sorted(presets.PRESETS)}")
        return presets.tiny() if seed is None else presets.tiny(seed=seed)

    presets.load_preset = fast_load_preset
    datasets_pkg.load_preset = fast_load_preset

    original_init = Trainer.__init__

    def fast_init(self, config=None):
        if config is None:
            original_init(self)
            config = self.config
        config = dataclasses.replace(config, epochs=min(config.epochs, 1))
        original_init(self, config)

    Trainer.__init__ = fast_init


# -- per-file bootstraps ------------------------------------------------------
#
# Each bootstrap returns the names a file's snippets assume pre-defined
# and creates any files they assume on disk (relative to the current —
# temporary — working directory).

def _serving_fixture() -> Dict[str, object]:
    """A trained checkpoint plus the documented live-query variables."""
    import numpy as np

    from repro.datasets import load_preset
    from repro.registry import build_model
    from repro.training import save_checkpoint

    dataset = load_preset("tiny")
    model = build_model("logcl", dataset, dim=32)
    save_checkpoint(model, "logcl.npz")

    test = dataset.splits()["test"].array
    first_time = int(test[:, 3].min())
    rows = test[test[:, 3] == first_time]
    return {
        "dataset": dataset,
        "new_facts": rows[:, :3].copy(),     # (s, r, o) rows, one snapshot
        "t": first_time,
        "subjects": rows[:4, 0].copy(),
        "relations": rows[:4, 1].copy(),
        "s": int(rows[0, 0]), "r": int(rows[0, 1]),
        "subject": int(rows[0, 0]), "relation": int(rows[0, 1]),
    }


def _benchmark_directory_fixture() -> Dict[str, object]:
    """The on-disk benchmark layout the data-format doc loads."""
    from repro.datasets import load_preset
    from repro.tkg import save_benchmark_directory

    save_benchmark_directory(load_preset("tiny"), "path/to/ICEWS14")
    return {}


def _dataset_fixture() -> Dict[str, object]:
    from repro.datasets import load_preset

    dataset = load_preset("tiny")
    return {"dataset": dataset, "num_relations": dataset.num_relations}


def _readme_fixture() -> Dict[str, object]:
    # The README trains on `tiny` itself; it additionally loads a
    # benchmark directory and serves from a saved checkpoint.
    namespace = _serving_fixture()
    _benchmark_directory_fixture()
    return namespace


BOOTSTRAPS: Dict[str, Callable[[], Dict[str, object]]] = {
    "README.md": _readme_fixture,
    "serving.md": _serving_fixture,
    "ops.md": _serving_fixture,
    "data_format.md": _benchmark_directory_fixture,
    "data.md": _dataset_fixture,
    "history.md": _dataset_fixture,
    "parallel.md": _dataset_fixture,
}


# -- execution ----------------------------------------------------------------

def run_file(path: str) -> int:
    """Run one doc file's blocks; returns the number executed."""
    rel = os.path.relpath(path, REPO_ROOT)
    blocks = extract_blocks(path)
    if not blocks:
        print(f"{rel}: no python blocks")
        return 0
    bootstrap = BOOTSTRAPS.get(os.path.basename(path))
    previous_dir = os.getcwd()
    with tempfile.TemporaryDirectory(prefix="doc_snippets_") as workdir:
        os.chdir(workdir)
        try:
            namespace: Dict[str, object] = {"__name__": "__doc_snippet__"}
            if bootstrap is not None:
                namespace.update(bootstrap())
            for line, code in blocks:
                started = time.perf_counter()
                exec(compile(code, f"{rel}:{line}", "exec"), namespace)
                print(f"  {rel}:{line} ok "
                      f"({time.perf_counter() - started:.1f}s)")
        finally:
            os.chdir(previous_dir)
    return len(blocks)


def default_files() -> List[str]:
    files = [os.path.join(REPO_ROOT, "README.md")]
    docs = os.path.join(REPO_ROOT, "docs")
    files.extend(os.path.join(docs, name)
                 for name in sorted(os.listdir(docs))
                 if name.endswith(".md"))
    return files


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Execute fenced python blocks from the project docs.")
    parser.add_argument("files", nargs="*",
                        help="markdown files (default: README.md docs/*.md)")
    parser.add_argument("--full", action="store_true",
                        help="run snippets verbatim (no preset/epoch clamps)")
    parser.add_argument("--list", action="store_true", dest="list_only",
                        help="list extracted blocks without running them")
    args = parser.parse_args(argv)

    files = [os.path.abspath(f) for f in args.files] or default_files()
    if args.list_only:
        for path in files:
            rel = os.path.relpath(path, REPO_ROOT)
            for line, code in extract_blocks(path):
                print(f"{rel}:{line} ({len(code.splitlines())} lines)")
        return 0

    if not args.full:
        apply_fast_clamps()

    total = 0
    for path in files:
        try:
            total += run_file(path)
        except Exception:
            rel = os.path.relpath(path, REPO_ROOT)
            print(f"FAILED in {rel}:", file=sys.stderr)
            traceback.print_exc()
            return 1
    print(f"ran {total} snippet blocks from {len(files)} files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
