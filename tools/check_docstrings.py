#!/usr/bin/env python
"""Docstring-presence lint for the shared runtime layers.

The data, history, parallel and serving layers are the repository's
shared infrastructure — other layers program against their surfaces, so every
*public* module, class, function and method there must say what it
does.  This checker walks the AST (no imports, so it runs anywhere)
and fails listing each undocumented public definition.

Public means: name without a leading underscore, reachable without a
leading-underscore parent.  Dunder methods other than ``__init__`` are
exempt (their contracts are the language's); ``__init__`` may document
itself either directly or via its class docstring's parameter section,
so it is exempt too.  Trivial overrides whose body is a bare
``raise NotImplementedError`` or ``...`` still need the one line saying
what subclasses must do — no exemption.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import List

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

CHECKED_PACKAGES = ("src/repro/data", "src/repro/history",
                    "src/repro/parallel", "src/repro/serving",
                    "src/repro/obs")


def _is_public(name: str) -> bool:
    return not name.startswith("_") or name == "__init__"


def _missing_in_file(path: str) -> List[str]:
    rel = os.path.relpath(path, REPO_ROOT)
    tree = ast.parse(open(path, encoding="utf-8").read(), filename=rel)
    missing: List[str] = []
    if ast.get_docstring(tree) is None:
        missing.append(f"{rel}:1 module")

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                continue
            name = child.name
            if name.startswith("__") and name.endswith("__"):
                continue                      # dunders: contract is the language's
            if not _is_public(name):
                continue
            qualified = f"{prefix}{name}"
            if ast.get_docstring(child) is None:
                kind = ("class" if isinstance(child, ast.ClassDef)
                        else "def")
                missing.append(f"{rel}:{child.lineno} {kind} {qualified}")
            if isinstance(child, ast.ClassDef):
                visit(child, f"{qualified}.")

    visit(tree, "")
    return missing


def main() -> int:
    missing: List[str] = []
    for package in CHECKED_PACKAGES:
        root = os.path.join(REPO_ROOT, package)
        for dirpath, _, filenames in os.walk(root):
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    missing.extend(
                        _missing_in_file(os.path.join(dirpath, filename)))
    if missing:
        print("undocumented public definitions "
              f"({len(missing)} — every public name in "
              f"{', '.join(p.split('/')[-1] for p in CHECKED_PACKAGES)} "
              "needs a docstring):", file=sys.stderr)
        for entry in sorted(missing):
            print(f"  {entry}", file=sys.stderr)
        return 1
    print("docstring lint: all public definitions documented in "
          + ", ".join(p.replace("src/", "").replace("/", ".")
                      for p in CHECKED_PACKAGES))
    return 0


if __name__ == "__main__":
    sys.exit(main())
