#!/usr/bin/env python
"""Dead-link lint for README.md and docs/*.md.

Docs drift when files move: a guide keeps pointing at a doc that was
renamed, or at a source file a refactor relocated.  This checker
extracts every markdown link from README.md and ``docs/*.md`` and
verifies that each *relative* target resolves to a real file or
directory (anchors are stripped; pure in-page ``#anchor`` links and
absolute ``http(s)``/``mailto`` URLs are skipped — this lint is about
the repository's own tree, not the network).

Exit status 1 lists every dead link as ``file:line target``; wired
into ``make lint`` via the ``docs-linkcheck`` target.
"""

from __future__ import annotations

import os
import re
import sys
from typing import List, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# [text](target) — target captured up to the first unescaped ')'.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# `target` inline references like "see `docs/ops.md`" are plain code
# spans, not links — they are intentionally NOT checked.

SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files() -> List[str]:
    """README.md plus every markdown file under docs/."""
    files = [os.path.join(REPO_ROOT, "README.md")]
    docs = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                files.append(os.path.join(docs, name))
    return [path for path in files if os.path.isfile(path)]


def dead_links_in(path: str) -> List[Tuple[int, str]]:
    """(line, target) pairs whose relative target does not resolve."""
    base = os.path.dirname(path)
    dead: List[Tuple[int, str]] = []
    with open(path, encoding="utf-8") as handle:
        in_fence = False
        for lineno, line in enumerate(handle, start=1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
            if in_fence:
                continue      # fenced code: link syntax there is literal
            for match in _LINK.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
                    continue
                resolved = os.path.normpath(
                    os.path.join(base, target.split("#", 1)[0]))
                if not os.path.exists(resolved):
                    dead.append((lineno, target))
    return dead


def main() -> int:
    failures: List[str] = []
    checked = 0
    for path in markdown_files():
        checked += 1
        rel = os.path.relpath(path, REPO_ROOT)
        for lineno, target in dead_links_in(path):
            failures.append(f"  {rel}:{lineno} {target}")
    if failures:
        print(f"dead relative links ({len(failures)}):", file=sys.stderr)
        for failure in failures:
            print(failure, file=sys.stderr)
        return 1
    print(f"link lint: no dead relative links across {checked} "
          "markdown file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
